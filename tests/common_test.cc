/**
 * @file
 * Unit and property tests for the common substrate: RNG distributions,
 * percentile digests, ring windows, and table rendering.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/check.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timeseries.h"

namespace sinan {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.NextU64() == b.NextU64();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.Uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.Uniform(5.0, 9.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.UniformInt(10ULL), 10ULL);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.UniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(11);
    std::vector<int> seen(6, 0);
    for (int i = 0; i < 600; ++i)
        ++seen[rng.UniformInt(6ULL)];
    for (int v : seen)
        EXPECT_GT(v, 0);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.Bernoulli(0.0));
        EXPECT_TRUE(rng.Bernoulli(1.0));
    }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect)
{
    Rng rng(5);
    double acc = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        acc += rng.Exponential(4.0);
    EXPECT_NEAR(acc / kN, 4.0, 0.15);
}

TEST(Rng, NormalMomentsApproximatelyCorrect)
{
    Rng rng(9);
    double mean = 0.0, var = 0.0;
    constexpr int kN = 20000;
    std::vector<double> xs(kN);
    for (int i = 0; i < kN; ++i) {
        xs[i] = rng.Normal(2.0, 3.0);
        mean += xs[i];
    }
    mean /= kN;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= kN;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, LogNormalIsPositiveWithRequestedMean)
{
    Rng rng(13);
    double acc = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) {
        const double v = rng.LogNormal(0.005, 0.3);
        EXPECT_GT(v, 0.0);
        acc += v;
    }
    EXPECT_NEAR(acc / kN, 0.005, 0.0004);
}

TEST(Rng, LogNormalZeroMeanReturnsZero)
{
    Rng rng(13);
    EXPECT_EQ(rng.LogNormal(0.0, 0.3), 0.0);
}

TEST(Rng, PoissonSmallLambdaMean)
{
    Rng rng(17);
    double acc = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i)
        acc += rng.Poisson(2.5);
    EXPECT_NEAR(acc / kN, 2.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaMean)
{
    Rng rng(19);
    double acc = 0.0;
    constexpr int kN = 5000;
    for (int i = 0; i < kN; ++i)
        acc += rng.Poisson(80.0);
    EXPECT_NEAR(acc / kN, 80.0, 1.0);
}

TEST(Rng, PoissonZeroRateIsZero)
{
    Rng rng(23);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng a(42);
    Rng b = a.Fork();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.NextU64() == b.NextU64();
    EXPECT_LT(same, 2);
}

TEST(PercentileDigest, EmptyReturnsZero)
{
    PercentileDigest d;
    EXPECT_EQ(d.Quantile(0.99), 0.0);
    EXPECT_EQ(d.Mean(), 0.0);
    EXPECT_EQ(d.Max(), 0.0);
    EXPECT_EQ(d.Count(), 0u);
}

TEST(PercentileDigest, SingleValue)
{
    PercentileDigest d;
    d.Add(42.0);
    d.Seal();
    EXPECT_EQ(d.Quantile(0.0), 42.0);
    EXPECT_EQ(d.Quantile(0.5), 42.0);
    EXPECT_EQ(d.Quantile(1.0), 42.0);
}

TEST(PercentileDigest, KnownQuantilesOfSequence)
{
    PercentileDigest d;
    for (int i = 1; i <= 101; ++i)
        d.Add(static_cast<double>(i));
    d.Seal();
    EXPECT_DOUBLE_EQ(d.Quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.Quantile(0.5), 51.0);
    EXPECT_DOUBLE_EQ(d.Quantile(1.0), 101.0);
    EXPECT_NEAR(d.Quantile(0.95), 96.0, 1e-9);
}

TEST(PercentileDigest, InterleavedAddAndQuery)
{
    PercentileDigest d;
    d.Add(10.0);
    d.Add(20.0);
    d.Seal();
    EXPECT_DOUBLE_EQ(d.Quantile(1.0), 20.0);
    d.Add(30.0); // invalidates the sealed state
    d.Seal();    // re-sealing after more writes is allowed
    EXPECT_DOUBLE_EQ(d.Quantile(1.0), 30.0);
    EXPECT_DOUBLE_EQ(d.Quantile(0.0), 10.0);
}

TEST(PercentileDigest, ResetClears)
{
    PercentileDigest d;
    d.Add(5.0);
    d.Reset();
    EXPECT_EQ(d.Count(), 0u);
    EXPECT_EQ(d.Quantile(0.5), 0.0);
}

TEST(PercentileDigest, UnsealedQueryIsAContractViolation)
{
    // Sealed-before-query is a hard contract: an unsealed query used
    // to silently sort a private copy, which hid missing roll-up calls
    // and cost an O(n log n) copy per query on the telemetry path.
    PercentileDigest d;
    d.Add(1.0);
    d.Add(2.0);
    EXPECT_THROW(d.Quantile(0.5), ContractViolation);
    EXPECT_THROW(d.Quantiles({0.5, 0.9}), ContractViolation);
    EXPECT_THROW(d.Max(), ContractViolation);
    // Mean and Count never needed the sort; they stay queryable.
    EXPECT_DOUBLE_EQ(d.Mean(), 1.5);
    EXPECT_EQ(d.Count(), 2u);
    d.Seal();
    EXPECT_DOUBLE_EQ(d.Quantile(0.5), 1.5);
}

TEST(PercentileDigest, ConcurrentConstReadersDoNotRace)
{
    // Regression: Quantile()/Max() used to sort `mutable` state from
    // const methods, so two threads reading one digest through const
    // refs raced (caught under TSan). Queries on a sealed digest are
    // pure reads, so concurrent const readers are safe.
    PercentileDigest d;
    Rng rng(13);
    for (int i = 0; i < 2000; ++i)
        d.Add(rng.Uniform(0, 1000));
    d.Seal();
    const PercentileDigest& ref = d;

    std::vector<double> results(8, 0.0);
    std::vector<std::thread> readers;
    for (int r = 0; r < 8; ++r) {
        readers.emplace_back([&ref, &results, r] {
            double acc = 0.0;
            for (int i = 0; i < 50; ++i) {
                acc += ref.Quantile(0.99);
                acc += ref.Max();
                acc += ref.Quantiles({0.5, 0.95}).back();
            }
            results[r] = acc;
        });
    }
    for (std::thread& t : readers)
        t.join();
    for (int r = 1; r < 8; ++r)
        EXPECT_DOUBLE_EQ(results[r], results[0]);
    EXPECT_EQ(d.Count(), 2000u);
    EXPECT_DOUBLE_EQ(d.Quantile(1.0), d.Max());
}

TEST(PercentileDigest, QuantilesBatchMatchesSingles)
{
    PercentileDigest d;
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        d.Add(rng.Uniform(0, 100));
    d.Seal();
    const auto qs = d.Quantiles({0.5, 0.9, 0.99});
    EXPECT_DOUBLE_EQ(qs[0], d.Quantile(0.5));
    EXPECT_DOUBLE_EQ(qs[1], d.Quantile(0.9));
    EXPECT_DOUBLE_EQ(qs[2], d.Quantile(0.99));
}

TEST(PercentileDigest, MeanAndMax)
{
    PercentileDigest d;
    d.Add(1.0);
    d.Add(2.0);
    d.Add(6.0);
    d.Seal();
    EXPECT_DOUBLE_EQ(d.Mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.Max(), 6.0);
}

/** Property: quantiles are monotonically non-decreasing in p. */
class QuantileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneTest, MonotoneInP)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    PercentileDigest d;
    const int n = 1 + static_cast<int>(rng.UniformInt(300ULL));
    for (int i = 0; i < n; ++i)
        d.Add(rng.Normal(50, 20));
    d.Seal();
    double prev = d.Quantile(0.0);
    for (double p = 0.05; p <= 1.0; p += 0.05) {
        const double q = d.Quantile(p);
        EXPECT_GE(q, prev - 1e-12);
        prev = q;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Range(1, 9));

TEST(RunningSummary, TracksMinMaxMeanCount)
{
    RunningSummary s;
    s.Add(3.0);
    s.Add(-1.0);
    s.Add(4.0);
    EXPECT_EQ(s.Count(), 3u);
    EXPECT_DOUBLE_EQ(s.Min(), -1.0);
    EXPECT_DOUBLE_EQ(s.Max(), 4.0);
    EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
    s.Reset();
    EXPECT_EQ(s.Count(), 0u);
    EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
}

TEST(VectorQuantile, EdgeProbabilities)
{
    std::vector<double> v = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(VectorQuantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(VectorQuantile(v, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(VectorQuantile(v, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(VectorQuantile({}, 0.5), 0.0);
}

TEST(Rmse, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 4.0}), std::sqrt(2.0));
    EXPECT_DOUBLE_EQ(Rmse({}, {}), 0.0);
    EXPECT_THROW(Rmse({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.Row().Add("alpha").Add(1.5, 1);
    t.Row().Add("b").Add(static_cast<long long>(10));
    const std::string out = t.Render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("10"), std::string::npos);
    EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t({"a", "b"});
    t.Row().Add("x").Add(2.25, 2);
    EXPECT_EQ(t.RenderCsv(), "a,b\nx,2.25\n");
}

TEST(FormatDouble, Precision)
{
    EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(WriteFile, RoundTripsThroughDisk)
{
    const std::string path = "/tmp/sinan_test_dir/out.txt";
    WriteFile(path, "hello");
    std::ifstream in(path);
    std::string content;
    std::getline(in, content);
    EXPECT_EQ(content, "hello");
    std::filesystem::remove_all("/tmp/sinan_test_dir");
}

TEST(RingWindow, RejectsZeroCapacity)
{
    EXPECT_THROW(RingWindow<int>(0), std::invalid_argument);
}

TEST(RingWindow, FillsThenWrapsChronologically)
{
    RingWindow<int> w(3);
    EXPECT_FALSE(w.Full());
    w.Push(1);
    w.Push(2);
    w.Push(3);
    EXPECT_TRUE(w.Full());
    w.Push(4); // evicts 1
    EXPECT_EQ(w.At(0), 2);
    EXPECT_EQ(w.At(1), 3);
    EXPECT_EQ(w.At(2), 4);
    EXPECT_EQ(w.Back(), 4);
    w.Push(5);
    w.Push(6);
    w.Push(7); // multiple wraps
    EXPECT_EQ(w.At(0), 5);
    EXPECT_EQ(w.At(2), 7);
}

TEST(RingWindow, AtOutOfRangeThrows)
{
    RingWindow<int> w(2);
    w.Push(1);
    EXPECT_THROW(w.At(1), std::out_of_range);
    EXPECT_THROW(RingWindow<int>(2).Back(), std::out_of_range);
}

TEST(RingWindow, ClearResets)
{
    RingWindow<int> w(2);
    w.Push(1);
    w.Push(2);
    w.Clear();
    EXPECT_EQ(w.Size(), 0u);
    w.Push(9);
    EXPECT_EQ(w.At(0), 9);
}

TEST(MetricsRegistry, CountersAndGauges)
{
    MetricsRegistry reg;
    EXPECT_EQ(reg.Counter("absent"), 0u);
    EXPECT_DOUBLE_EQ(reg.Gauge("absent"), 0.0);
    reg.Inc("a");
    reg.Inc("a", 4);
    reg.Set("g", 2.5);
    reg.Set("g", -1.0);
    EXPECT_EQ(reg.Counter("a"), 5u);
    EXPECT_DOUBLE_EQ(reg.Gauge("g"), -1.0);
    reg.Clear();
    EXPECT_EQ(reg.Counter("a"), 0u);
}

TEST(MetricsRegistry, HistogramBucketsAndSummary)
{
    MetricsRegistry reg;
    reg.Observe("h", 0.5, {1.0, 10.0, 100.0});
    reg.Observe("h", 1.0);  // boundary lands in its bucket (inclusive)
    reg.Observe("h", 50.0);
    reg.Observe("h", 1000.0); // overflow
    const FixedHistogram* h = reg.Histogram("h");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->Counts().size(), 4u);
    EXPECT_EQ(h->Counts()[0], 2u);
    EXPECT_EQ(h->Counts()[1], 0u);
    EXPECT_EQ(h->Counts()[2], 1u);
    EXPECT_EQ(h->Counts()[3], 1u);
    EXPECT_EQ(h->Count(), 4u);
    EXPECT_DOUBLE_EQ(h->Sum(), 1051.5);
    EXPECT_DOUBLE_EQ(h->Min(), 0.5);
    EXPECT_DOUBLE_EQ(h->Max(), 1000.0);
    EXPECT_EQ(reg.Histogram("absent"), nullptr);
}

TEST(MetricsRegistry, HistogramRejectsUnsortedBounds)
{
    EXPECT_THROW(FixedHistogram({3.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, SerializationIsDeterministic)
{
    auto fill = [](MetricsRegistry& reg, bool reorder) {
        if (reorder) {
            reg.Set("gauge.z", 7.0);
            reg.Inc("counter.b", 2);
            reg.Inc("counter.a");
        } else {
            reg.Inc("counter.a");
            reg.Inc("counter.b", 2);
            reg.Set("gauge.z", 7.0);
        }
        reg.Observe("hist", 3.0, {1.0, 5.0});
        reg.Observe("hist", 9.0);
    };
    MetricsRegistry x, y;
    fill(x, false);
    fill(y, true);
    // Same metrics in any insertion order render byte-identically.
    EXPECT_EQ(x.ToCsv(), y.ToCsv());
    EXPECT_EQ(x.ToJson(), y.ToJson());
    EXPECT_NE(x.ToCsv().find("counter,counter.a,value,1"),
              std::string::npos);
    EXPECT_NE(x.ToCsv().find("histogram,hist,le_inf,1"),
              std::string::npos);
    EXPECT_NE(x.ToJson().find("\"counter.b\": 2"), std::string::npos);
}

} // namespace
} // namespace sinan
