/**
 * @file
 * Golden-file pin of sinan_analyze's SARIF 2.1.0 rendering. CI uploads
 * the SARIF log as an artifact and code-scanning UIs consume it, so
 * its exact bytes are a contract like the telemetry serializations:
 * any drift (rule table, ordering, escaping, layout) must show up as a
 * reviewed diff of tests/golden/analyze.sarif, not as a silent change.
 *
 * The pinned report comes from the analyzer's own mini-tree fixture
 * (tools/analyze/fixtures/tree), which exercises findings from both
 * the per-file and the graph passes plus both suppression layers —
 * so the golden file also locks the finding order and message text.
 * Regenerate after an intentional format change with:
 *   SINAN_REGEN_GOLDEN=1 ./tests/analyze_sarif_test
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analyze.h"

namespace sinan {
namespace analyze {
namespace {

std::string
GoldenPath(const char* name)
{
    return std::string(SINAN_REPO_ROOT) + "/tests/golden/" + name;
}

std::string
ReadFileOrEmpty(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

Report
FixtureReport()
{
    return AnalyzeTree(std::string(SINAN_REPO_ROOT) +
                       "/tools/analyze/fixtures/tree");
}

TEST(AnalyzeSarifTest, SarifBytesAreStable)
{
    const std::string rendered = ToSarif(FixtureReport());
    const std::string path = GoldenPath("analyze.sarif");
    if (std::getenv("SINAN_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::string golden = ReadFileOrEmpty(path);
    ASSERT_FALSE(golden.empty())
        << path << " missing; regenerate with SINAN_REGEN_GOLDEN=1";
    EXPECT_EQ(rendered, golden)
        << "analyze.sarif drifted from the committed golden file. If "
           "the change is intentional, rerun with SINAN_REGEN_GOLDEN=1 "
           "and commit the diff.";
}

TEST(AnalyzeSarifTest, MiniTreeReportShapeIsStable)
{
    const Report report = FixtureReport();
    // The mini tree is the self-test fixture: its findings fire on
    // purpose, its config errors do not.
    EXPECT_TRUE(report.errors.empty());
    EXPECT_FALSE(report.findings.empty());
    EXPECT_FALSE(report.Clean());
    // Findings arrive in (path, line, rule) order — the SARIF result
    // order the golden file pins.
    for (size_t i = 1; i < report.findings.size(); ++i)
        EXPECT_FALSE(FindingLess(report.findings[i],
                                 report.findings[i - 1]));
}

TEST(AnalyzeSarifTest, RenderingIsAPureFunctionOfTheReport)
{
    const Report report = FixtureReport();
    EXPECT_EQ(ToSarif(report), ToSarif(report));
}

} // namespace
} // namespace analyze
} // namespace sinan
