/**
 * @file
 * Golden-file pin of the telemetry_log serializers. The decision-trace
 * CSV and JSON renderings are consumed by the acceptance tooling and
 * compared byte-for-byte by the determinism tests, so their exact bytes
 * are a contract: any formatting drift (column order, precision,
 * enum spelling, JSON layout) must show up as a reviewed diff of the
 * committed golden files, not as a silent change.
 *
 * The fixture trace is hand-built to cover every serialization branch:
 * a warm-up interval with no candidates, a model interval with one
 * candidate per outcome, a fallback, a degraded interval with
 * non-finite telemetry, and an uncertainty-aware interval with graded
 * confidence. Regenerate after an intentional format change
 * with:  SINAN_REGEN_GOLDEN=1 ./tests/golden_trace_test
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/telemetry_log.h"

namespace sinan {
namespace {

std::string
GoldenPath(const char* name)
{
    return std::string(SINAN_REPO_ROOT) + "/tests/golden/" + name;
}

std::string
ReadFileOrEmpty(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** A fixed trace exercising every row shape the serializers emit. */
DecisionTrace
FixtureTrace()
{
    DecisionTrace trace;

    // Interval 0: warm-up, no candidates (the candidate=-1 row).
    DecisionTraceEntry warmup;
    warmup.time_s = 1.0;
    warmup.interval = 0;
    warmup.kind = DecisionKind::kWarmup;
    warmup.observed_p99_ms = 87.5;
    trace.intervals.push_back(warmup);

    // Interval 1: model path, one candidate per outcome.
    DecisionTraceEntry model;
    model.time_s = 2.0;
    model.interval = 1;
    model.kind = DecisionKind::kModel;
    model.observed_p99_ms = 142.25;
    model.healthy_streak = 3;
    model.margin_ms = 20.0;
    model.may_reclaim = true;
    model.chosen = 1;
    const CandidateOutcome outcomes[] = {
        CandidateOutcome::kNotCheapest,
        CandidateOutcome::kChosen,
        CandidateOutcome::kRejectedHysteresis,
        CandidateOutcome::kRejectedPostDownSaturation,
        CandidateOutcome::kRejectedLatencyMargin,
        CandidateOutcome::kRejectedViolationProb,
        CandidateOutcome::kRejectedDegradedTelemetry,
    };
    const ActionKind kinds[] = {
        ActionKind::kHold,          ActionKind::kScaleDown,
        ActionKind::kScaleDownBatch, ActionKind::kScaleUp,
        ActionKind::kScaleUpAll,    ActionKind::kScaleUpVictims,
        ActionKind::kHold,
    };
    for (int i = 0; i < 7; ++i) {
        CandidateTrace c;
        c.kind = kinds[i];
        c.total_cpu = 10.0 + i * 0.5;
        c.latency_ms = {100.0 + i, 110.0 + i, 120.0 + i, 130.0 + i,
                        140.0 + i};
        c.p_violation = 0.01 * i;
        c.outcome = outcomes[i];
        model.candidates.push_back(c);
    }
    trace.intervals.push_back(model);

    // Interval 2: fallback after an observed violation, trust lost.
    DecisionTraceEntry fallback;
    fallback.time_s = 3.0;
    fallback.interval = 2;
    fallback.kind = DecisionKind::kEscalatedFallback;
    fallback.observed_p99_ms = 512.0;
    fallback.violated = true;
    fallback.trust_reduced = true;
    fallback.mispredictions = 2;
    fallback.consecutive_violations = 3;
    fallback.trust_lost = true;
    trace.intervals.push_back(fallback);

    // Interval 3: degraded telemetry (non-finite), heuristic path.
    DecisionTraceEntry degraded;
    degraded.time_s = 4.0;
    degraded.interval = 3;
    degraded.kind = DecisionKind::kDegradedHeuristic;
    degraded.observed_p99_ms = -1.0;
    degraded.telemetry = TelemetryHealth::kNonFinite;
    degraded.silent_intervals = 1;
    degraded.trust_reduced = true;
    degraded.trust_restored = false;
    trace.intervals.push_back(degraded);

    // Interval 4: uncertainty-aware path — partially-trusted telemetry,
    // graded confidence, widened margin, and a candidate rejected by the
    // confidence-scaled step-down budget.
    DecisionTraceEntry uncertain;
    uncertain.time_s = 5.0;
    uncertain.interval = 4;
    uncertain.kind = DecisionKind::kUncertainModel;
    uncertain.observed_p99_ms = 98.0;
    uncertain.telemetry = TelemetryHealth::kNonFinite;
    uncertain.silent_intervals = 2;
    uncertain.confidence = 0.8;
    uncertain.uncertainty_margin_ms = 3.0;
    uncertain.tier_confidence = {1.0, 0.0, 1.0, 0.25};
    uncertain.chosen = 1;
    CandidateTrace too_big;
    too_big.kind = ActionKind::kScaleDown;
    too_big.total_cpu = 9.0;
    too_big.latency_ms = {90.0, 95.0, 100.0, 105.0, 110.0};
    too_big.p_violation = 0.02;
    too_big.outcome = CandidateOutcome::kRejectedUncertaintyStep;
    uncertain.candidates.push_back(too_big);
    CandidateTrace hold;
    hold.kind = ActionKind::kHold;
    hold.total_cpu = 10.0;
    hold.latency_ms = {95.0, 100.0, 105.0, 110.0, 115.0};
    hold.p_violation = 0.01;
    hold.outcome = CandidateOutcome::kChosen;
    uncertain.candidates.push_back(hold);
    trace.intervals.push_back(uncertain);

    return trace;
}

void
CheckGolden(const char* name, const std::string& rendered)
{
    const std::string path = GoldenPath(name);
    if (std::getenv("SINAN_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::string golden = ReadFileOrEmpty(path);
    ASSERT_FALSE(golden.empty())
        << path << " missing; regenerate with SINAN_REGEN_GOLDEN=1";
    EXPECT_EQ(rendered, golden)
        << name
        << " drifted from the committed golden file. If the change is "
           "intentional, rerun with SINAN_REGEN_GOLDEN=1 and commit "
           "the diff.";
}

TEST(GoldenTraceTest, DecisionTraceCsvBytesAreStable)
{
    CheckGolden("decision_trace.csv",
                DecisionTraceToCsv(FixtureTrace()));
}

TEST(GoldenTraceTest, DecisionTraceJsonBytesAreStable)
{
    CheckGolden("decision_trace.json",
                DecisionTraceToJson(FixtureTrace()));
}

TEST(GoldenTraceTest, RenderingIsAPureFunctionOfTheTrace)
{
    const DecisionTrace t = FixtureTrace();
    EXPECT_EQ(DecisionTraceToCsv(t), DecisionTraceToCsv(t));
    EXPECT_EQ(DecisionTraceToJson(t), DecisionTraceToJson(t));
}

} // namespace
} // namespace sinan
