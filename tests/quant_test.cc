/**
 * @file
 * Validation suite for the int8 quantized inference mode.
 *
 * The int8 path is NOT bit-identical to fp32, so unlike the SIMD
 * fastpath tests it is validated on its own terms:
 *
 *  - kernel level: the scalar and AVX2 int8 GEMM / quantize /
 *    fused-requantize kernels must agree byte-for-byte (exact int32
 *    accumulation makes this hold by construction), including on the
 *    quantizer's edge cases (round-half ties, NaN, infinities);
 *  - model level: int8 predictions must be byte-identical against
 *    themselves across thread counts and scalar/AVX2 dispatch,
 *    --quant=off must remain byte-identical to the fp32 path, and the
 *    steady-state int8 Evaluate loop must stay allocation-free;
 *  - accuracy level: on the bundled bench_cache models, int8-vs-fp32
 *    latency divergence is bounded by a fraction of QoS and a seeded
 *    scheduler sweep must reach >= 99% identical Decide outcomes;
 *  - format level: legacy (pre-quant) model files still load, the
 *    versioned container round-trips calibration, old readers reject
 *    a versioned file with a clear error, and unknown future versions
 *    are rejected by name.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/apps.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "harness/harness.h"
#include "models/hybrid.h"
#include "nn/quant.h"
#include "tensor/gemm_int8_kernels.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;
using testutil::SyntheticDataset;

/** Restores the entry thread count on scope exit. */
class ThreadGuard {
  public:
    ThreadGuard() : saved_(NumThreads()) {}
    ~ThreadGuard() { SetNumThreads(saved_); }

  private:
    int saved_;
};

/** Restores the entry SIMD dispatch mode on scope exit. */
class SimdModeGuard {
  public:
    SimdModeGuard() : saved_(CurrentSimdMode()) {}
    ~SimdModeGuard() { SetSimdMode(saved_); }

  private:
    SimdMode saved_;
};

/** Trains a small hybrid model quickly, with a calibration set. */
struct SmallModel {
    std::unique_ptr<HybridModel> model;
    Dataset calib;
};

SmallModel
TrainSmallHybrid(const FeatureConfig& f, uint64_t seed)
{
    const Dataset all = SyntheticDataset(f, 200, seed);
    Rng rng(seed + 1);
    const auto [train, valid] = all.Split(0.9, rng);
    HybridConfig cfg;
    cfg.train.epochs = 3;
    cfg.bt.n_trees = 25;
    SmallModel out;
    out.model = std::make_unique<HybridModel>(f, cfg, seed + 2);
    out.model->Train(train, valid);
    out.calib = train;
    return out;
}

MetricWindow
MakeWindow(const FeatureConfig& f, double rps, double p99)
{
    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, rps, 2.0, 0.6, p99));
    return w;
}

std::vector<std::vector<double>>
MakeCandidates(const FeatureConfig& f, int n)
{
    std::vector<std::vector<double>> cands;
    for (int i = 0; i < n; ++i) {
        std::vector<double> a(static_cast<size_t>(f.n_tiers));
        for (int j = 0; j < f.n_tiers; ++j)
            a[static_cast<size_t>(j)] = 0.4 + 0.13 * ((i + j) % 17);
        cands.push_back(std::move(a));
    }
    return cands;
}

void
ExpectPredictionsBitIdentical(const std::vector<Prediction>& a,
                              const std::vector<Prediction>& b,
                              const std::string& what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].latency_ms, b[i].latency_ms)
            << what << " candidate " << i;
        ASSERT_EQ(a[i].p_violation, b[i].p_violation)
            << what << " candidate " << i;
    }
}

std::unique_ptr<HybridModel>
LoadBundledModel(const Application& app, const std::string& name)
{
    const std::string path =
        std::string(SINAN_REPO_ROOT) + "/bench_cache/" + name + ".model";
    if (!std::filesystem::exists(path))
        return nullptr;
    const PipelineConfig pcfg; // history / lookahead defaults
    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = app.qos_ms;
    auto model =
        std::make_unique<HybridModel>(f, DefaultHybridConfig(), 1);
    std::ifstream in(path, std::ios::binary);
    model->Load(in);
    return model;
}

// ---------------------------------------------------------------------
// Kernel-level byte parity (scalar vs dispatched). On hosts without
// AVX2 both modes resolve to the scalar kernel and the comparisons are
// trivially true; on AVX2 hosts they pin the vector implementations.
// ---------------------------------------------------------------------

TEST(QuantKernels, GemmScalarMatchesDispatchBytes)
{
    SimdModeGuard mode_guard;
    Rng rng(41);
    // Shapes crossing every panel width (16/8/tail) and k%4 residue.
    const int64_t ks[] = {1, 3, 4, 7, 54, 72, 128};
    const int64_t ns[] = {1, 5, 8, 13, 16, 24, 48};
    for (const int64_t k : ks) {
        for (const int64_t n : ns) {
            const int64_t rows = 9;
            const int64_t lda = Int8KGroups(k) * 4;
            std::vector<uint8_t> a(static_cast<size_t>(rows * lda));
            for (auto& v : a)
                v = static_cast<uint8_t>(rng.Uniform(0, 256));
            std::vector<int8_t> b(static_cast<size_t>(k * n));
            for (auto& v : b)
                v = static_cast<int8_t>(rng.Uniform(-kInt8WeightMax,
                                                    kInt8WeightMax + 1));
            std::vector<int8_t> packed(
                static_cast<size_t>(Int8PackedSize(k, n)));
            PackInt8B(b.data(), n, k, n, packed.data());

            std::vector<int32_t> c_ref(static_cast<size_t>(rows * n), 0);
            GemmInt8RowsScalar(a.data(), lda, packed.data(), c_ref.data(),
                               n, 0, rows, k, n);

            // The scalar kernel against a plain triple loop: the packed
            // layout and the row-panel contract compute exact sums.
            for (int64_t r = 0; r < rows; ++r) {
                for (int64_t j = 0; j < n; ++j) {
                    int64_t want = 0;
                    for (int64_t p = 0; p < k; ++p)
                        want += static_cast<int64_t>(
                                    a[static_cast<size_t>(r * lda + p)]) *
                                b[static_cast<size_t>(p * n + j)];
                    ASSERT_EQ(c_ref[static_cast<size_t>(r * n + j)], want)
                        << "k=" << k << " n=" << n;
                }
            }

            SetSimdMode(SimdMode::kOn);
            std::vector<int32_t> c_vec(static_cast<size_t>(rows * n), 0);
            // Split the row range to exercise the r0 > 0 path.
            ActiveGemmInt8Rows()(a.data(), lda, packed.data(),
                                 c_vec.data(), n, 0, 4, k, n);
            ActiveGemmInt8Rows()(a.data(), lda, packed.data(),
                                 c_vec.data(), n, 4, rows, k, n);
            ASSERT_EQ(std::memcmp(c_ref.data(), c_vec.data(),
                                  c_ref.size() * sizeof(int32_t)),
                      0)
                << "scalar vs dispatched, k=" << k << " n=" << n;
        }
    }
}

TEST(QuantKernels, QuantizeU8HandlesEdgeValuesIdentically)
{
    SimdModeGuard mode_guard;
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> x = {0.0f,   -0.0f,  0.5f,   -0.5f,  1.5f,
                            -1.5f,  2.5f,   -2.5f,  127.4f, -127.4f,
                            199.5f, -199.5f, 1e30f, -1e30f, inf,
                            -inf,   nan,    1e-30f, -1e-30f};
    Rng rng(43);
    for (int i = 0; i < 173; ++i) // odd count: exercises the tail
        x.push_back(static_cast<float>(rng.Uniform(-300, 300)));

    std::vector<uint8_t> ref(x.size()), vec(x.size());
    QuantizeU8Scalar(x.data(), static_cast<int64_t>(x.size()), 1.0f,
                     ref.data());
    SetSimdMode(SimdMode::kOn);
    ActiveQuantizeU8()(x.data(), static_cast<int64_t>(x.size()), 1.0f,
                       vec.data());
    ASSERT_EQ(std::memcmp(ref.data(), vec.data(), ref.size()), 0);

    // Pin the documented rule: round-half-away, zero point 128, the
    // ±kQuantClamp float clamp, and NaN -> byte 0.
    EXPECT_EQ(ref[0], 128);  // 0.0
    EXPECT_EQ(ref[1], 128);  // -0.0
    EXPECT_EQ(ref[2], 129);  // 0.5 rounds away to 1
    EXPECT_EQ(ref[3], 127);  // -0.5 rounds away to -1
    EXPECT_EQ(ref[6], 131);  // 2.5 rounds away to 3
    EXPECT_EQ(ref[7], 125);  // -2.5 rounds away to -3
    EXPECT_EQ(ref[12], 255); // 1e30 clamps to +kQuantClamp
    EXPECT_EQ(ref[13], 0);   // -1e30 clamps to -kQuantClamp
    EXPECT_EQ(ref[14], 255); // +inf
    EXPECT_EQ(ref[15], 0);   // -inf
    EXPECT_EQ(ref[16], 0);   // NaN: min/max order maps to -kQuantClamp
}

TEST(QuantKernels, RequantReluScalarMatchesDispatchBytes)
{
    SimdModeGuard mode_guard;
    Rng rng(47);
    const int64_t ocs[] = {1, 5, 8, 9, 16, 23};
    for (const int64_t oc : ocs) {
        const int64_t rows = 11;
        std::vector<int32_t> acc(static_cast<size_t>(rows * oc));
        for (auto& v : acc)
            v = static_cast<int32_t>(rng.Uniform(-500000, 500000));
        std::vector<float> bias(static_cast<size_t>(oc));
        std::vector<float> rscale(static_cast<size_t>(oc));
        std::vector<int32_t> zp128(static_cast<size_t>(oc));
        for (int64_t c = 0; c < oc; ++c) {
            bias[static_cast<size_t>(c)] =
                static_cast<float>(rng.Uniform(-2, 2));
            rscale[static_cast<size_t>(c)] =
                static_cast<float>(rng.Uniform(0.00001, 0.001));
            zp128[static_cast<size_t>(c)] =
                static_cast<int32_t>(rng.Uniform(-100000, 100000));
        }
        const float inv_next = 37.5f;

        std::vector<uint8_t> ref(static_cast<size_t>(rows * oc));
        std::vector<uint8_t> vec(static_cast<size_t>(rows * oc));
        RequantReluU8Scalar(acc.data(), rows, oc, bias.data(),
                            rscale.data(), zp128.data(), inv_next,
                            ref.data());
        SetSimdMode(SimdMode::kOn);
        ActiveRequantReluU8()(acc.data(), rows, oc, bias.data(),
                              rscale.data(), zp128.data(), inv_next,
                              vec.data());
        ASSERT_EQ(std::memcmp(ref.data(), vec.data(), ref.size()), 0)
            << "oc=" << oc;

        // The fused relu is max(q, 128) — never below the zero point,
        // and exactly the unfused compose on every element.
        for (int64_t i = 0; i < rows * oc; ++i) {
            const int64_t c = i % oc;
            const float v =
                bias[static_cast<size_t>(c)] +
                rscale[static_cast<size_t>(c)] *
                    static_cast<float>(acc[static_cast<size_t>(i)] -
                                       zp128[static_cast<size_t>(c)]);
            const uint8_t q = QuantizeU8One(v, inv_next);
            const uint8_t want = q < 128 ? uint8_t{128} : q;
            ASSERT_EQ(ref[static_cast<size_t>(i)], want) << "i=" << i;
            ASSERT_GE(ref[static_cast<size_t>(i)], 128);
        }
    }
}

// ---------------------------------------------------------------------
// Model-level invariants on a small trained hybrid.
// ---------------------------------------------------------------------

class QuantModelTest : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        features_ = new FeatureConfig(SmallFeatures());
        SmallModel sm = TrainSmallHybrid(*features_, 211);
        model_ = sm.model.release();
        calib_ = new Dataset(std::move(sm.calib));
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        delete features_;
        delete calib_;
        model_ = nullptr;
        features_ = nullptr;
        calib_ = nullptr;
    }

    static FeatureConfig* features_;
    static HybridModel* model_;
    static Dataset* calib_;
};

FeatureConfig* QuantModelTest::features_ = nullptr;
HybridModel* QuantModelTest::model_ = nullptr;
Dataset* QuantModelTest::calib_ = nullptr;

TEST_F(QuantModelTest, Int8RequiresCalibration)
{
    SmallModel fresh = TrainSmallHybrid(*features_, 307);
    EXPECT_FALSE(fresh.model->Int8Calibrated());
    EXPECT_THROW(fresh.model->SetQuantMode(QuantMode::kInt8),
                 std::runtime_error);
    // The scheduler surfaces the same error from its config.
    SchedulerConfig cfg;
    cfg.quant = QuantMode::kInt8;
    EXPECT_THROW(SinanScheduler(*fresh.model, cfg), std::runtime_error);
}

TEST_F(QuantModelTest, QuantOffStaysByteIdenticalToFp32)
{
    const MetricWindow w = MakeWindow(*features_, 150, 120);
    const auto cands = MakeCandidates(*features_, 24);

    ThreadGuard guard;
    SetNumThreads(1);
    model_->SetQuantMode(QuantMode::kOff);
    const std::vector<Prediction> ref = model_->Evaluate(w, cands);

    // Calibrating, running int8, and switching back must not move a
    // bit of the fp32 path: quantization only adds state, it never
    // touches the fp32 weights.
    model_->CalibrateInt8(*calib_);
    ASSERT_TRUE(model_->Int8Calibrated());
    ExpectPredictionsBitIdentical(model_->Evaluate(w, cands), ref,
                                  "fp32 after calibration");
    model_->SetQuantMode(QuantMode::kInt8);
    (void)model_->Evaluate(w, cands);
    model_->SetQuantMode(QuantMode::kOff);
    ExpectPredictionsBitIdentical(model_->Evaluate(w, cands), ref,
                                  "fp32 after int8 round trip");
}

TEST_F(QuantModelTest, Int8ByteIdenticalAcrossThreadCounts)
{
    const MetricWindow w = MakeWindow(*features_, 180, 140);
    const auto cands = MakeCandidates(*features_, 33);
    if (!model_->Int8Calibrated())
        model_->CalibrateInt8(*calib_);
    model_->SetQuantMode(QuantMode::kInt8);

    ThreadGuard guard;
    SetNumThreads(1);
    const std::vector<Prediction> ref = model_->Evaluate(w, cands);
    for (int threads : {2, 8}) {
        SetNumThreads(threads);
        ExpectPredictionsBitIdentical(
            model_->Evaluate(w, cands), ref,
            "int8 threads=" + std::to_string(threads));
    }
    SetNumThreads(1);
    model_->SetQuantMode(QuantMode::kOff);
}

TEST_F(QuantModelTest, Int8ByteIdenticalAcrossDispatchModes)
{
    const MetricWindow w = MakeWindow(*features_, 220, 160);
    const auto cands = MakeCandidates(*features_, 17);
    if (!model_->Int8Calibrated())
        model_->CalibrateInt8(*calib_);
    model_->SetQuantMode(QuantMode::kInt8);

    ThreadGuard guard;
    SimdModeGuard mode_guard;
    SetNumThreads(1);
    SetSimdMode(SimdMode::kOff);
    const std::vector<Prediction> scalar = model_->Evaluate(w, cands);
    SetSimdMode(SimdMode::kOn);
    ExpectPredictionsBitIdentical(model_->Evaluate(w, cands), scalar,
                                  "int8 scalar vs dispatched");
    model_->SetQuantMode(QuantMode::kOff);
}

TEST_F(QuantModelTest, Int8SteadyStateIsAllocationFree)
{
    const MetricWindow w = MakeWindow(*features_, 140, 110);
    const auto cands = MakeCandidates(*features_, 21);
    if (!model_->Int8Calibrated())
        model_->CalibrateInt8(*calib_);
    model_->SetQuantMode(QuantMode::kInt8);

    ThreadGuard guard;
    SetNumThreads(1);
    (void)model_->Evaluate(w, cands); // warm the workspace
    (void)model_->Evaluate(w, cands);
    const uint64_t before = Tensor::AllocationEvents();
    for (int i = 0; i < 5; ++i)
        (void)model_->Evaluate(w, cands);
    EXPECT_EQ(Tensor::AllocationEvents() - before, 0u)
        << "steady-state int8 Evaluate must not allocate tensors";
    model_->SetQuantMode(QuantMode::kOff);
}

TEST_F(QuantModelTest, Int8WorkspaceStopsGrowingAfterWarmup)
{
    // The u8/int32 scratch pool has the same contract at the quant-op
    // level: repeated same-shape forwards reuse the grown buffers.
    QuantizedLinear lin;
    std::vector<float> w(64 * 24);
    Rng rng(53);
    for (auto& v : w)
        v = static_cast<float>(rng.Uniform(-1, 1));
    lin.QuantizeWeights(w.data(), 64, 24, 24, 1);
    lin.SetActivationScale(3.0f);
    const std::vector<float> bias(24, 0.1f);

    Tensor x({5, 64});
    for (size_t i = 0; i < x.Size(); ++i)
        x.Data()[i] = static_cast<float>(rng.Uniform(-3, 3));
    Tensor y;
    Int8Workspace ws;
    QuantizedDenseForward(lin, bias, x, y, ws);
    const int64_t grown = ws.GrowthEvents();
    EXPECT_GT(grown, 0);
    for (int i = 0; i < 4; ++i)
        QuantizedDenseForward(lin, bias, x, y, ws);
    EXPECT_EQ(ws.GrowthEvents(), grown)
        << "same-shape quantized forwards must reuse the workspace";
}

TEST_F(QuantModelTest, EvaluateTimedStampsKernelIdsInEveryMode)
{
    const MetricWindow w = MakeWindow(*features_, 160, 130);
    const auto cands = MakeCandidates(*features_, 9);
    if (!model_->Int8Calibrated())
        model_->CalibrateInt8(*calib_);

    ThreadGuard guard;
    SimdModeGuard mode_guard;
    SetNumThreads(1);
    for (const QuantMode quant : {QuantMode::kOff, QuantMode::kInt8}) {
        model_->SetQuantMode(quant);
        for (const SimdMode simd : {SimdMode::kOff, SimdMode::kOn}) {
            SetSimdMode(simd);
            // What the dispatch switch says the stamp must be. With
            // SINAN_SIMD=off this is the scalar id on every host; with
            // kOn it is the AVX2 id exactly when the CPU has AVX2.
            const std::string want = quant == QuantMode::kInt8
                                         ? ActiveInt8KernelId()
                                         : ActiveKernelId();
            if (simd == SimdMode::kOff) {
                ASSERT_EQ(want, quant == QuantMode::kInt8
                                    ? "int8-scalar-v1"
                                    : "scalar-v1");
            }
            EvalStageTimes stages;
            const auto t0 = std::chrono::steady_clock::now();
            const std::vector<Prediction> preds =
                model_->EvaluateTimed(w, cands, &stages);
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            ASSERT_EQ(preds.size(), cands.size());
            EXPECT_EQ(std::string(stages.kernel_id), want);

            // The four stages partition the call (minus cheap glue):
            // each non-negative, and their sum bounded by the wall
            // clock around the call.
            EXPECT_GE(stages.feature_build_s, 0.0);
            EXPECT_GE(stages.trunk_s, 0.0);
            EXPECT_GE(stages.head_s, 0.0);
            EXPECT_GE(stages.bt_s, 0.0);
            const double sum = stages.feature_build_s + stages.trunk_s +
                               stages.head_s + stages.bt_s;
            EXPECT_GT(sum, 0.0);
            EXPECT_LE(sum, wall);
        }
    }
    model_->SetQuantMode(QuantMode::kOff);
}

// ---------------------------------------------------------------------
// Serialization format.
// ---------------------------------------------------------------------

TEST_F(QuantModelTest, LegacyFormatStillRoundTrips)
{
    const MetricWindow w = MakeWindow(*features_, 150, 120);
    const auto cands = MakeCandidates(*features_, 12);

    ThreadGuard guard;
    SetNumThreads(1);
    model_->SetQuantMode(QuantMode::kOff);
    const std::vector<Prediction> ref = model_->Evaluate(w, cands);

    std::ostringstream out;
    model_->SaveLegacy(out);
    HybridModel loaded(*features_, DefaultHybridConfig(), 999);
    std::istringstream in(out.str());
    loaded.Load(in); // auto-detects the pre-container layout
    EXPECT_FALSE(loaded.Int8Calibrated())
        << "legacy files carry no quant section";
    ExpectPredictionsBitIdentical(loaded.Evaluate(w, cands), ref,
                                  "legacy round trip");
}

TEST_F(QuantModelTest, VersionedRoundTripPreservesCalibration)
{
    const MetricWindow w = MakeWindow(*features_, 150, 120);
    const auto cands = MakeCandidates(*features_, 12);
    if (!model_->Int8Calibrated())
        model_->CalibrateInt8(*calib_);

    ThreadGuard guard;
    SetNumThreads(1);
    model_->SetQuantMode(QuantMode::kInt8);
    const std::vector<Prediction> ref_int8 = model_->Evaluate(w, cands);
    model_->SetQuantMode(QuantMode::kOff);
    const std::vector<Prediction> ref_fp32 = model_->Evaluate(w, cands);

    std::ostringstream out;
    model_->Save(out);
    // The container leads with the magic so readers can sniff it.
    int32_t magic = 0;
    std::memcpy(&magic, out.str().data(), sizeof(magic));
    EXPECT_EQ(magic, kModelMagic);

    HybridModel loaded(*features_, DefaultHybridConfig(), 999);
    std::istringstream in(out.str());
    loaded.Load(in);
    ASSERT_TRUE(loaded.Int8Calibrated())
        << "the quant section must survive a round trip";
    ExpectPredictionsBitIdentical(loaded.Evaluate(w, cands), ref_fp32,
                                  "fp32 after versioned round trip");
    loaded.SetQuantMode(QuantMode::kInt8);
    ExpectPredictionsBitIdentical(loaded.Evaluate(w, cands), ref_int8,
                                  "int8 after versioned round trip");
}

TEST_F(QuantModelTest, OldReaderRejectsVersionedFileCleanly)
{
    if (!model_->Int8Calibrated())
        model_->CalibrateInt8(*calib_);
    std::ostringstream out;
    model_->Save(out);

    // A pre-container reader starts with Tensor::Load, which reads the
    // magic as a tensor rank. kModelMagic is far outside the valid
    // rank range by design, so the old reader fails loudly at byte 0
    // instead of shoveling garbage into weights.
    std::istringstream in(out.str());
    try {
        (void)Tensor::Load(in);
        FAIL() << "old reader accepted a versioned container";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("corrupt header"),
                  std::string::npos)
            << "unexpected error: " << e.what();
    }
}

TEST_F(QuantModelTest, UnknownFutureVersionIsRejectedByName)
{
    std::ostringstream out;
    const int32_t magic = kModelMagic;
    const int32_t version = kModelVersion + 97;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out << "future payload this build cannot parse";

    HybridModel loaded(*features_, DefaultHybridConfig(), 999);
    std::istringstream in(out.str());
    try {
        loaded.Load(in);
        FAIL() << "unknown future version was accepted";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("version"), std::string::npos)
            << "unexpected error: " << what;
        EXPECT_NE(what.find(std::to_string(version)), std::string::npos)
            << "error should name the offending version: " << what;
    }
}

// ---------------------------------------------------------------------
// Accuracy gates on the bundled models (skip when absent).
// ---------------------------------------------------------------------

/** Per-percentile divergence bound, as a fraction of the app's QoS.
 *  Measured max on the bundled models is ~2.9% (hotel) and ~1.8%
 *  (social); 5% leaves room without hiding a real regression. */
constexpr double kDivergenceQosFrac = 0.05;
/** Violation-probability divergence bound (measured max 0.04). */
constexpr double kPvDivergence = 0.1;

void
CheckBundledDivergence(const Application& app, const std::string& name)
{
    std::unique_ptr<HybridModel> model = LoadBundledModel(app, name);
    if (!model)
        GTEST_SKIP() << "bundled model " << name << " not present";
    if (!model->Int8Calibrated())
        GTEST_SKIP() << "bundled model " << name << " predates quant";
    const FeatureConfig& f = model->Features();

    ThreadGuard guard;
    SetNumThreads(1);
    for (const double rps : {100.0, 200.0, 350.0}) {
        for (const double frac : {0.2, 0.5, 0.9}) {
            const MetricWindow w =
                MakeWindow(f, rps, frac * f.qos_ms);
            const auto cands = MakeCandidates(f, 32);
            model->SetQuantMode(QuantMode::kOff);
            const std::vector<Prediction> pf = model->Evaluate(w, cands);
            model->SetQuantMode(QuantMode::kInt8);
            const std::vector<Prediction> pq = model->Evaluate(w, cands);
            ASSERT_EQ(pf.size(), pq.size());
            for (size_t i = 0; i < pf.size(); ++i) {
                ASSERT_EQ(pf[i].latency_ms.size(),
                          pq[i].latency_ms.size());
                for (size_t p = 0; p < pf[i].latency_ms.size(); ++p) {
                    EXPECT_LE(std::fabs(pq[i].latency_ms[p] -
                                        pf[i].latency_ms[p]),
                              kDivergenceQosFrac * f.qos_ms)
                        << name << " rps=" << rps << " frac=" << frac
                        << " cand=" << i << " percentile=" << p;
                }
                EXPECT_LE(std::fabs(pq[i].p_violation -
                                    pf[i].p_violation),
                          kPvDivergence)
                    << name << " rps=" << rps << " frac=" << frac
                    << " cand=" << i;
            }
        }
    }
    model->SetQuantMode(QuantMode::kOff);
}

TEST(QuantAccuracy, DivergenceBoundedOnBundledHotel)
{
    CheckBundledDivergence(BuildHotelReservation(), "hotel");
}

TEST(QuantAccuracy, DivergenceBoundedOnBundledSocial)
{
    CheckBundledDivergence(BuildSocialNetwork(), "social");
}

/**
 * Seeded decision-agreement sweep: two schedulers over the same model
 * weights — one fp32, one int8 — fed an identical deterministic
 * observation stream (open loop: the fp32 decision drives the shared
 * allocation so both always compare the same state). The int8 gate is
 * >= 99% bit-equal Decide vectors; with the int8 trunk + fp32 head
 * split the measured agreement is 100% on both bundled models.
 */
void
CheckBundledDecisionAgreement(const Application& app,
                              const std::string& name)
{
    std::unique_ptr<HybridModel> m_off = LoadBundledModel(app, name);
    std::unique_ptr<HybridModel> m_q = LoadBundledModel(app, name);
    if (!m_off || !m_q)
        GTEST_SKIP() << "bundled model " << name << " not present";
    if (!m_off->Int8Calibrated())
        GTEST_SKIP() << "bundled model " << name << " predates quant";
    const FeatureConfig& f = m_off->Features();

    ThreadGuard guard;
    SetNumThreads(1);
    SchedulerConfig c_off;
    SchedulerConfig c_q;
    c_q.quant = QuantMode::kInt8;
    SinanScheduler s_off(*m_off, c_off);
    SinanScheduler s_q(*m_q, c_q);

    std::vector<double> alloc(static_cast<size_t>(f.n_tiers));
    for (size_t i = 0; i < alloc.size(); ++i)
        alloc[i] = app.tiers[i].init_cpu;

    const int intervals = 300;
    int agree = 0;
    for (int t = 0; t < intervals; ++t) {
        // Deterministic load/latency waves that sweep the decision
        // space (holds, upscales, reclaim streaks, near-threshold
        // predictions) without RNG.
        const double rps =
            80.0 + 260.0 * (0.5 + 0.5 * std::sin(t * 0.13));
        const double util =
            0.3 + 0.65 * (0.5 + 0.5 * std::sin(t * 0.071 + 1.0));
        const double p99 =
            f.qos_ms *
            (0.15 + 0.8 * (0.5 + 0.5 * std::sin(t * 0.057 + 2.0)));
        const IntervalObservation obs =
            MakeObs(f, t, rps, alloc[0], util, p99);
        const std::vector<double> a_off = s_off.Decide(obs, alloc, app);
        const std::vector<double> a_q = s_q.Decide(obs, alloc, app);
        if (a_off == a_q)
            ++agree;
        alloc = a_off;
    }
    EXPECT_GE(agree, static_cast<int>(0.99 * intervals))
        << name << ": " << agree << "/" << intervals
        << " identical decisions";
}

TEST(QuantAccuracy, DecisionAgreementOnBundledHotel)
{
    CheckBundledDecisionAgreement(BuildHotelReservation(), "hotel");
}

TEST(QuantAccuracy, DecisionAgreementOnBundledSocial)
{
    CheckBundledDecisionAgreement(BuildSocialNetwork(), "social");
}

} // namespace
} // namespace sinan
