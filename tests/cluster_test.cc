/**
 * @file
 * Tests for the cluster queueing substrate: processor sharing, call-tree
 * execution, concurrency-slot back-pressure, cache short-circuits, async
 * fan-out, metric accounting, and the log-sync stall model.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"

namespace sinan {
namespace {

/** Builds a linear chain app: t0 -> t1 -> ... with given demands (ms). */
Application
ChainApp(const std::vector<double>& demands_ms, double cv = 0.0)
{
    Application app;
    app.name = "chain";
    app.qos_ms = 1000.0;
    for (size_t i = 0; i < demands_ms.size(); ++i) {
        TierSpec t;
        t.name = "t" + std::to_string(i);
        t.concurrency_per_replica = 64;
        t.init_cpu = 4.0;
        t.max_cpu = 16.0;
        app.tiers.push_back(t);
    }
    CallNode* cursor = nullptr;
    RequestType rt;
    rt.name = "chain";
    for (size_t i = 0; i < demands_ms.size(); ++i) {
        CallNode node;
        node.tier = static_cast<int>(i);
        node.demand_s = demands_ms[i] / 1000.0;
        node.demand_cv = cv;
        if (!cursor) {
            rt.root = node;
            cursor = &rt.root;
        } else {
            cursor->children.push_back(node);
            cursor = &cursor->children.back();
        }
    }
    app.request_types.push_back(rt);
    return app;
}

/** Runs the cluster for @p seconds with no new arrivals. */
void
Drain(Cluster& cluster, double seconds, double dt = 0.01,
      double start = 0.0)
{
    const int ticks = static_cast<int>(std::llround(seconds / dt));
    for (int i = 0; i < ticks; ++i)
        cluster.Tick(start + i * dt, dt);
}

TEST(Cluster, RejectsBadInputs)
{
    Application empty;
    EXPECT_THROW(Cluster(empty, ClusterConfig{}, 1),
                 std::invalid_argument);
    Application app = ChainApp({1.0});
    ClusterConfig bad;
    bad.replica_scale = 0;
    EXPECT_THROW(Cluster(app, bad, 1), std::invalid_argument);
    Cluster ok(app, ClusterConfig{}, 1);
    EXPECT_THROW(ok.Inject(5, 0.0), std::out_of_range);
    EXPECT_THROW(ok.SetCpuLimit(9, 1.0), std::out_of_range);
    EXPECT_THROW(ok.SetAllocation({1.0, 2.0}), std::invalid_argument);
}

TEST(Cluster, SingleRequestCompletesWithExpectedLatency)
{
    // 20 ms of work on one tier with ample CPU: latency should be the
    // demand rounded up to tick granularity (plus the completion tick).
    Application app = ChainApp({20.0});
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    EXPECT_EQ(cluster.InFlight(), 1);
    Drain(cluster, 0.2);
    EXPECT_EQ(cluster.InFlight(), 0);
    ASSERT_EQ(cluster.Latencies().Count(), 1u);
    const double lat = cluster.Latencies().Quantile(0.5);
    EXPECT_GE(lat, 20.0);
    EXPECT_LE(lat, 40.0);
}

TEST(Cluster, ChainLatencyAccumulatesAcrossTiers)
{
    Application app = ChainApp({10.0, 10.0, 10.0});
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    ASSERT_EQ(cluster.Latencies().Count(), 1u);
    const double lat = cluster.Latencies().Quantile(0.5);
    EXPECT_GE(lat, 30.0);
    EXPECT_LE(lat, 80.0);
}

TEST(Cluster, ProcessorSharingSlowsConcurrentRequests)
{
    // Two 50 ms requests sharing one core finish in ~100 ms each.
    Application app = ChainApp({50.0});
    app.tiers[0].init_cpu = 1.0;
    app.tiers[0].min_cpu = 1.0;
    app.tiers[0].max_cpu = 1.0;
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    ASSERT_EQ(cluster.Latencies().Count(), 2u);
    EXPECT_GE(cluster.Latencies().Quantile(1.0), 95.0);
    EXPECT_LE(cluster.Latencies().Quantile(1.0), 130.0);
}

TEST(Cluster, CpuLimitThrottlesThroughput)
{
    // 10 requests x 20 ms on a 0.5-core tier need >= 0.4 s of wall time.
    Application app = ChainApp({20.0});
    app.tiers[0].min_cpu = 0.5;
    app.tiers[0].init_cpu = 0.5;
    Cluster cluster(app, ClusterConfig{}, 1);
    for (int i = 0; i < 10; ++i)
        cluster.Inject(0, 0.0);
    Drain(cluster, 0.35);
    EXPECT_GT(cluster.InFlight(), 0);
    Drain(cluster, 0.5, 0.01, 0.35);
    EXPECT_EQ(cluster.InFlight(), 0);
}

TEST(Cluster, ConcurrencyLimitSerializesExecution)
{
    // One slot: two 30 ms requests run back to back even with 4 cores.
    Application app = ChainApp({30.0});
    app.tiers[0].concurrency_per_replica = 1;
    app.tiers[0].replicas = 1;
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    ASSERT_EQ(cluster.Latencies().Count(), 2u);
    // Serial completion is 60 ms; the within-tick slot handoff can give
    // the second request up to one tick of head start.
    EXPECT_GE(cluster.Latencies().Quantile(1.0), 50.0);
    EXPECT_LE(cluster.Latencies().Quantile(1.0), 80.0);
}

TEST(Cluster, BackpressurePropagatesUpstream)
{
    // Downstream tier t1 is starved; upstream t0 has few slots, so its
    // admission queue must grow even though t0 itself has CPU to spare.
    Application app = ChainApp({1.0, 20.0});
    app.tiers[0].concurrency_per_replica = 4;
    app.tiers[0].replicas = 1;
    app.tiers[1].min_cpu = 0.2;
    app.tiers[1].init_cpu = 0.2;
    app.tiers[1].concurrency_per_replica = 64;
    Cluster cluster(app, ClusterConfig{}, 1);
    for (int i = 0; i < 60; ++i)
        cluster.Inject(0, 0.0);
    Drain(cluster, 0.3);
    const TierState& t0 = cluster.TierAt(0);
    EXPECT_GT(t0.queue.size(), 0u)
        << "upstream should be blocked by slot exhaustion";
    // All four upstream slots are held by stages waiting on downstream.
    EXPECT_EQ(t0.active, 4);
}

TEST(Cluster, CacheHitSkipsChildren)
{
    Application app = ChainApp({1.0, 5.0});
    app.request_types[0].root.hit_prob = 1.0; // always hit
    Cluster cluster(app, ClusterConfig{}, 1);
    for (int i = 0; i < 20; ++i)
        cluster.Inject(0, 0.0);
    Drain(cluster, 1.0);
    const IntervalObservation obs = cluster.Harvest(1.0, 1.0);
    EXPECT_EQ(cluster.InFlight(), 0);
    EXPECT_DOUBLE_EQ(obs.tiers[1].cpu_used, 0.0);
    EXPECT_DOUBLE_EQ(obs.tiers[1].rx_pps, 0.0);
}

TEST(Cluster, CacheMissInvokesChildren)
{
    Application app = ChainApp({1.0, 5.0});
    app.request_types[0].root.hit_prob = 0.0;
    Cluster cluster(app, ClusterConfig{}, 1);
    for (int i = 0; i < 20; ++i)
        cluster.Inject(0, 0.0);
    Drain(cluster, 1.0);
    const IntervalObservation obs = cluster.Harvest(1.0, 1.0);
    EXPECT_GT(obs.tiers[1].cpu_used, 0.0);
    EXPECT_GT(obs.tiers[1].rx_pps, 0.0);
}

TEST(Cluster, AsyncChildDoesNotDelayCompletion)
{
    // Root does 5 ms; async child does 200 ms. Latency ~ root only.
    Application app = ChainApp({5.0, 200.0});
    app.request_types[0].root.children[0].async = true;
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.1);
    ASSERT_EQ(cluster.Latencies().Count(), 1u);
    EXPECT_LE(cluster.Latencies().Quantile(1.0), 40.0);
    // The async work still consumes CPU on its tier.
    Drain(cluster, 0.3, 0.01, 0.1);
    const IntervalObservation obs = cluster.Harvest(0.4, 0.4);
    EXPECT_GT(obs.tiers[1].cpu_used, 0.0);
}

TEST(Cluster, ParallelChildrenOverlap)
{
    // Root fans out to two 40 ms children on separate tiers: total
    // latency should be far below the serial 80 ms + overheads.
    Application app = ChainApp({1.0});
    TierSpec child_tier;
    child_tier.name = "child_a";
    child_tier.init_cpu = 4.0;
    app.tiers.push_back(child_tier);
    child_tier.name = "child_b";
    app.tiers.push_back(child_tier);
    CallNode a;
    a.tier = 1;
    a.demand_s = 0.04;
    a.demand_cv = 0.0;
    CallNode b = a;
    b.tier = 2;
    app.request_types[0].root.children = {a, b};
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.3);
    ASSERT_EQ(cluster.Latencies().Count(), 1u);
    EXPECT_LE(cluster.Latencies().Quantile(1.0), 70.0);
    EXPECT_GE(cluster.Latencies().Quantile(1.0), 40.0);
}

TEST(Cluster, SetCpuLimitClampsToSpec)
{
    Application app = ChainApp({1.0});
    app.tiers[0].min_cpu = 1.0;
    app.tiers[0].max_cpu = 4.0;
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.SetCpuLimit(0, 100.0);
    EXPECT_DOUBLE_EQ(cluster.Allocation()[0], 4.0);
    cluster.SetCpuLimit(0, 0.01);
    EXPECT_DOUBLE_EQ(cluster.Allocation()[0], 1.0);
}

TEST(Cluster, HarvestResetsIntervalAccumulators)
{
    Application app = ChainApp({5.0});
    Cluster cluster(app, ClusterConfig{}, 1);
    ClusterConfig quiet;
    quiet.metric_noise = 0.0;
    Cluster c2(app, quiet, 1);
    for (int i = 0; i < 10; ++i)
        c2.Inject(0, 0.0);
    Drain(c2, 1.0);
    const IntervalObservation first = c2.Harvest(1.0, 1.0);
    EXPECT_GT(first.tiers[0].cpu_used, 0.0);
    EXPECT_DOUBLE_EQ(first.rps, 10.0);
    Drain(c2, 1.0, 0.01, 1.0);
    const IntervalObservation second = c2.Harvest(2.0, 1.0);
    EXPECT_DOUBLE_EQ(second.tiers[0].cpu_used, 0.0);
    EXPECT_DOUBLE_EQ(second.rps, 0.0);
    EXPECT_EQ(second.latency_ms.back(), 0.0);
}

TEST(Cluster, MetricsAreInternallyConsistent)
{
    Application app = ChainApp({2.0, 3.0});
    ClusterConfig cfg;
    cfg.metric_noise = 0.0;
    Cluster cluster(app, cfg, 1);
    for (int i = 0; i < 50; ++i)
        cluster.Inject(0, i * 0.01);
    Drain(cluster, 1.0);
    const IntervalObservation obs = cluster.Harvest(1.0, 1.0);
    for (const TierMetrics& m : obs.tiers) {
        EXPECT_LE(m.cpu_used, m.cpu_limit * 1.001);
        EXPECT_GE(m.rss_mb, 0.0);
        EXPECT_GE(m.Utilization(), 0.0);
        EXPECT_LE(m.Utilization(), 1.001);
    }
    // Each request traverses both tiers: rx at each should match count.
    EXPECT_NEAR(obs.tiers[0].rx_pps,
                50.0 * app.tiers[0].pkts_per_rpc * 2.0, 1e-6);
}

TEST(Cluster, RssGrowsWithBacklog)
{
    Application app = ChainApp({50.0});
    app.tiers[0].min_cpu = 0.2;
    app.tiers[0].init_cpu = 0.2;
    ClusterConfig cfg;
    cfg.metric_noise = 0.0;
    Cluster idle(app, cfg, 1);
    Drain(idle, 1.0);
    const double rss_idle = idle.Harvest(1.0, 1.0).tiers[0].rss_mb;

    Cluster busy(app, cfg, 1);
    for (int i = 0; i < 200; ++i)
        busy.Inject(0, 0.0);
    Drain(busy, 1.0);
    const double rss_busy = busy.Harvest(1.0, 1.0).tiers[0].rss_mb;
    EXPECT_GT(rss_busy, rss_idle + 5.0);
}

TEST(Cluster, LogSyncStallCausesLatencySpike)
{
    Application app = ChainApp({5.0});
    app.tiers[0].log_sync = true;
    app.tiers[0].log_sync_period_s = 2.0;
    app.tiers[0].written_mb_per_req = 1.0;
    app.tiers[0].stall_s_per_mb = 0.005;
    app.tiers[0].stall_base_s = 0.1;

    ClusterConfig cfg;
    cfg.metric_noise = 0.0;
    Cluster cluster(app, cfg, 1);
    double max_lat_before = 0.0, max_lat_after = 0.0;
    double now = 0.0;
    for (int sec = 0; sec < 4; ++sec) {
        for (int i = 0; i < 100; ++i) {
            cluster.Tick(now, 0.01);
            if (i % 5 == 0)
                cluster.Inject(0, now);
            now += 0.01;
        }
        const IntervalObservation obs = cluster.Harvest(now, 1.0);
        if (sec < 2)
            max_lat_before = std::max(max_lat_before, obs.P99());
        else
            max_lat_after = std::max(max_lat_after, obs.P99());
    }
    // The sync at t=2 s stalls the tier for >= 100 ms.
    EXPECT_LT(max_lat_before, 60.0);
    EXPECT_GT(max_lat_after, 90.0);
}

TEST(Cluster, LogSyncDisabledByConfigSwitch)
{
    Application app = ChainApp({5.0});
    app.tiers[0].log_sync = true;
    app.tiers[0].log_sync_period_s = 2.0;
    app.tiers[0].written_mb_per_req = 1.0;
    app.tiers[0].stall_base_s = 0.2;
    ClusterConfig cfg;
    cfg.metric_noise = 0.0;
    cfg.enable_log_sync = false;
    Cluster cluster(app, cfg, 1);
    double now = 0.0;
    double max_lat = 0.0;
    for (int sec = 0; sec < 4; ++sec) {
        for (int i = 0; i < 100; ++i) {
            cluster.Tick(now, 0.01);
            if (i % 5 == 0)
                cluster.Inject(0, now);
            now += 0.01;
        }
        max_lat = std::max(max_lat, cluster.Harvest(now, 1.0).P99());
    }
    EXPECT_LT(max_lat, 60.0);
}

TEST(Cluster, SpeedFactorScalesCapacity)
{
    Application app = ChainApp({20.0});
    app.tiers[0].min_cpu = 1.0;
    app.tiers[0].init_cpu = 1.0;
    app.tiers[0].max_cpu = 1.0;
    ClusterConfig slow;
    slow.speed_factor = 0.5;
    slow.metric_noise = 0.0;
    Cluster cluster(app, slow, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    ASSERT_EQ(cluster.Latencies().Count(), 1u);
    // 20 ms of work at 0.5 effective cores ~ 40 ms.
    EXPECT_GE(cluster.Latencies().Quantile(1.0), 40.0);
}

TEST(Cluster, ReplicaScaleMultipliesSlots)
{
    Application app = ChainApp({10.0});
    app.tiers[0].concurrency_per_replica = 2;
    app.tiers[0].replicas = 3;
    ClusterConfig cfg;
    cfg.replica_scale = 4;
    Cluster cluster(app, cfg, 1);
    EXPECT_EQ(cluster.TierAt(0).slots, 24);
}


TEST(Cluster, RequestConservationUnderRandomTraffic)
{
    // injected == completed + in-flight, across random loads/allocs.
    Application app = ChainApp({3.0, 6.0, 2.0}, 0.2);
    Cluster cluster(app, ClusterConfig{}, 11);
    Rng rng(13);
    int64_t injected = 0;
    double now = 0.0;
    for (int i = 0; i < 3000; ++i) {
        const int n = rng.Poisson(1.5);
        for (int j = 0; j < n; ++j) {
            cluster.Inject(0, now);
            ++injected;
        }
        if (i % 400 == 0)
            cluster.SetCpuLimit(1, rng.Uniform(0.5, 8.0));
        cluster.Tick(now, 0.01);
        now += 0.01;
    }
    int64_t completed = 0;
    // Count completions across the interval boundaries we crossed.
    // (Latency digest resets at Harvest; count via completed_rps.)
    const IntervalObservation obs = cluster.Harvest(now, now);
    completed = static_cast<int64_t>(
        std::llround(obs.completed_rps * now));
    EXPECT_EQ(injected, completed + cluster.InFlight());
}

TEST(Cluster, DeterministicForSameSeed)
{
    Application app = ChainApp({4.0, 8.0}, 0.3);
    auto run = [&] {
        Cluster cluster(app, ClusterConfig{}, 17);
        Rng rng(19);
        double now = 0.0;
        for (int i = 0; i < 1000; ++i) {
            const int n = rng.Poisson(1.0);
            for (int j = 0; j < n; ++j)
                cluster.Inject(0, now);
            cluster.Tick(now, 0.01);
            now += 0.01;
        }
        const IntervalObservation obs = cluster.Harvest(now, now);
        return std::make_pair(obs.latency_ms, obs.tiers[0].cpu_used);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Cluster, SerialChainCannotCompressWorkIntoOneTick)
{
    // Three 10 ms hops cost at least 3 ticks of wall time even with
    // infinite CPU (children spawned mid-tick wait for the next tick).
    Application app = ChainApp({10.0, 10.0, 10.0});
    for (auto& t : app.tiers) {
        t.init_cpu = 16.0;
        t.max_cpu = 16.0;
    }
    Cluster cluster(app, ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    ASSERT_EQ(cluster.Latencies().Count(), 1u);
    EXPECT_GE(cluster.Latencies().Quantile(0.5), 30.0);
}

TEST(Cluster, LogSyncPeriodIsRespected)
{
    Application app = ChainApp({2.0});
    app.tiers[0].log_sync = true;
    app.tiers[0].log_sync_period_s = 3.0;
    app.tiers[0].written_mb_per_req = 0.5;
    app.tiers[0].stall_base_s = 0.15;
    ClusterConfig cfg;
    cfg.metric_noise = 0.0;
    Cluster cluster(app, cfg, 21);
    double now = 0.0;
    std::vector<double> p99s;
    for (int sec = 0; sec < 9; ++sec) {
        for (int i = 0; i < 100; ++i) {
            if (i % 4 == 0)
                cluster.Inject(0, now);
            cluster.Tick(now, 0.01);
            now += 0.01;
        }
        p99s.push_back(cluster.Harvest(now, 1.0).P99());
    }
    // Stalls at t=3 s and t=6 s: seconds 3 and 6 spike, neighbors low.
    EXPECT_GT(p99s[3], 100.0);
    EXPECT_GT(p99s[6], 100.0);
    EXPECT_LT(p99s[1], 60.0);
    EXPECT_LT(p99s[4], 60.0);
}

/** Property: offered load above tier capacity accumulates backlog. */
class SaturationTest : public ::testing::TestWithParam<double> {};

TEST_P(SaturationTest, BacklogIffOverloaded)
{
    const double load_factor = GetParam();
    Application app = ChainApp({10.0}, 0.05);
    app.tiers[0].min_cpu = 1.0;
    app.tiers[0].init_cpu = 1.0;
    app.tiers[0].max_cpu = 1.0;
    Cluster cluster(app, ClusterConfig{}, 7);
    // Capacity = 100 req/s at 10 ms per request on 1 core.
    const double rate = 100.0 * load_factor;
    Rng rng(3);
    double now = 0.0;
    for (int i = 0; i < 1500; ++i) {
        const int n = rng.Poisson(rate * 0.01);
        for (int j = 0; j < n; ++j)
            cluster.Inject(0, now);
        cluster.Tick(now, 0.01);
        now += 0.01;
    }
    if (load_factor > 1.2) {
        EXPECT_GT(cluster.InFlight(), 50);
    } else if (load_factor < 0.8) {
        EXPECT_LT(cluster.InFlight(), 20);
    }
}

INSTANTIATE_TEST_SUITE_P(LoadFactors, SaturationTest,
                         ::testing::Values(0.3, 0.5, 0.7, 1.5, 2.0, 3.0));

} // namespace
} // namespace sinan
