/**
 * @file
 * Tests for featurization, datasets, the Sinan CNN, the MLP/LSTM
 * baselines, the trainer, and the hybrid CNN+BT model.
 */
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <sstream>

#include "common/thread_pool.h"
#include "models/baseline_nets.h"
#include "models/hybrid.h"
#include "models/multitask.h"
#include "models/sinan_cnn.h"
#include "models/trainer.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;
using testutil::SyntheticDataset;

TEST(MetricWindow, ReadyOnlyWhenFull)
{
    const FeatureConfig f = SmallFeatures();
    MetricWindow w(f);
    EXPECT_FALSE(w.Ready());
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 100, 2.0, 0.5, 120));
    EXPECT_TRUE(w.Ready());
    w.Clear();
    EXPECT_FALSE(w.Ready());
}

TEST(BuildInput, ShapesAndNormalization)
{
    const FeatureConfig f = SmallFeatures();
    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 100, 4.0, 0.5, 250));
    const std::vector<double> alloc(f.n_tiers, 8.0);
    const Sample s = BuildInput(w, alloc);
    EXPECT_EQ(s.xrh.Shape(),
              (std::vector<int>{FeatureConfig::kChannels, f.n_tiers,
                                f.history}));
    EXPECT_EQ(s.xlh.Dim(0), f.history * f.n_percentiles);
    EXPECT_EQ(s.xrc.Dim(0), f.n_tiers);
    // cpu_limit channel normalized by cpu_scale.
    EXPECT_FLOAT_EQ(s.xrh.At(0, 0, 0),
                    static_cast<float>(4.0 / f.cpu_scale));
    // p99 normalized by QoS: last percentile of each timestep.
    EXPECT_FLOAT_EQ(s.xlh[f.n_percentiles - 1],
                    static_cast<float>(250.0 / f.qos_ms));
    EXPECT_FLOAT_EQ(s.xrc[0], static_cast<float>(8.0 / f.cpu_scale));
}

TEST(BuildInput, RequiresFullWindowAndMatchingAlloc)
{
    const FeatureConfig f = SmallFeatures();
    MetricWindow w(f);
    EXPECT_THROW(BuildInput(w, std::vector<double>(f.n_tiers, 1.0)),
                 std::logic_error);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 100, 4.0, 0.5, 100));
    EXPECT_THROW(BuildInput(w, {1.0}), std::invalid_argument);
}

TEST(StackSamples, BatchesAndValidates)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset d = SyntheticDataset(f, 5, 1);
    std::vector<const Sample*> ptrs;
    for (const Sample& s : d.samples)
        ptrs.push_back(&s);
    const Batch b = StackSamples(ptrs);
    EXPECT_EQ(b.Size(), 5);
    EXPECT_EQ(b.xrh.Dim(1), FeatureConfig::kChannels);
    // First sample's data is copied verbatim.
    EXPECT_FLOAT_EQ(b.xrc.At(0, 0), d.samples[0].xrc[0]);
    EXPECT_THROW(StackSamples({}), std::invalid_argument);
}

TEST(Dataset, SplitIsDeterministicAndDisjoint)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset d = SyntheticDataset(f, 100, 2);
    Rng rng1(7), rng2(7);
    const auto [train1, val1] = d.Split(0.9, rng1);
    const auto [train2, val2] = d.Split(0.9, rng2);
    EXPECT_EQ(train1.samples.size(), 90u);
    EXPECT_EQ(val1.samples.size(), 10u);
    EXPECT_EQ(train1.samples.size(), train2.samples.size());
    EXPECT_FLOAT_EQ(train1.samples[0].violation,
                    train2.samples[0].violation);
    EXPECT_THROW(d.Split(0.0, rng1), std::invalid_argument);
    EXPECT_THROW(d.Split(1.0, rng1), std::invalid_argument);
}

TEST(Dataset, ViolationRate)
{
    Dataset d;
    Sample s;
    s.violation = 1.0f;
    d.samples.push_back(s);
    s.violation = 0.0f;
    d.samples.push_back(s);
    EXPECT_DOUBLE_EQ(d.ViolationRate(), 0.5);
    EXPECT_DOUBLE_EQ(Dataset{}.ViolationRate(), 0.0);
}

TEST(SinanCnn, ForwardShapesAndLatent)
{
    const FeatureConfig f = SmallFeatures();
    SinanCnnConfig cfg;
    SinanCnn cnn(f, cfg, 3);
    const Dataset d = SyntheticDataset(f, 8, 3);
    std::vector<int> idx = {0, 1, 2, 3, 4, 5, 6, 7};
    const Batch b = d.MakeBatch(idx, 0, 8);
    const Tensor y = cnn.Forward(b);
    EXPECT_EQ(y.Shape(), (std::vector<int>{8, f.n_percentiles}));
    EXPECT_EQ(cnn.Latent().Shape(), (std::vector<int>{8, cfg.latent}));
    EXPECT_GT(cnn.NumParams(), 1000u);
}

TEST(SinanCnn, SaveLoadReproducesOutputs)
{
    const FeatureConfig f = SmallFeatures();
    SinanCnn a(f, SinanCnnConfig{}, 3);
    SinanCnn b(f, SinanCnnConfig{}, 99);
    const Dataset d = SyntheticDataset(f, 4, 3);
    std::vector<int> idx = {0, 1, 2, 3};
    const Batch batch = d.MakeBatch(idx, 0, 4);
    std::stringstream ss;
    a.Save(ss);
    b.Load(ss);
    const Tensor ya = a.Forward(batch);
    const Tensor yb = b.Forward(batch);
    for (size_t i = 0; i < ya.Size(); ++i)
        EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(BaselineNets, ForwardShapes)
{
    const FeatureConfig f = SmallFeatures();
    MlpPredictor mlp(f, 32, 16, 5);
    LstmPredictor lstm(f, 12, 5);
    const Dataset d = SyntheticDataset(f, 6, 5);
    std::vector<int> idx = {0, 1, 2, 3, 4, 5};
    const Batch b = d.MakeBatch(idx, 0, 6);
    EXPECT_EQ(mlp.Forward(b).Shape(),
              (std::vector<int>{6, f.n_percentiles}));
    EXPECT_EQ(lstm.Forward(b).Shape(),
              (std::vector<int>{6, f.n_percentiles}));
    EXPECT_STREQ(mlp.Name(), "MLP");
    EXPECT_STREQ(lstm.Name(), "LSTM");
}

/**
 * Every latency model must learn the synthetic allocation→latency law
 * well enough to beat the predict-the-mean baseline by a wide margin.
 */
class ModelLearnsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModelLearnsTest, BeatsMeanPredictor)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset all = SyntheticDataset(f, 600, 11);
    Rng rng(13);
    const auto [train, valid] = all.Split(0.9, rng);

    std::unique_ptr<LatencyModel> model;
    const std::string name = GetParam();
    if (name == "CNN") {
        model = std::make_unique<SinanCnn>(f, SinanCnnConfig{}, 21);
    } else if (name == "MLP") {
        model = std::make_unique<MlpPredictor>(f, 64, 32, 21);
    } else {
        model = std::make_unique<LstmPredictor>(f, 24, 21);
    }

    TrainOptions opts;
    opts.epochs = 50;
    opts.lr = 0.03;
    // Plain MSE: the test's success metric is unscaled RMSE, so the
    // training objective should match it (Eq. 2's scaling is exercised
    // separately below).
    opts.scaled_loss = false;
    const TrainReport report =
        TrainLatencyModel(*model, train, valid, f, opts);

    // Mean predictor RMSE (in ms) on the validation set.
    double mean = 0.0;
    size_t n = 0;
    for (const Sample& s : valid.samples) {
        for (float v : s.y_latency) {
            mean += static_cast<double>(v);
            ++n;
        }
    }
    mean /= static_cast<double>(n);
    double se = 0.0;
    for (const Sample& s : valid.samples) {
        for (float v : s.y_latency) {
            const double d = static_cast<double>(v) - mean;
            se += d * d;
        }
    }
    const double mean_rmse_ms =
        std::sqrt(se / static_cast<double>(n)) * f.qos_ms;

    // The law's 1/ratio^2 spikes carry irreducible noise, so even a
    // good fit keeps a sizable RMSE; beating the mean predictor by 20%
    // demonstrates the inputs were actually used.
    EXPECT_LT(report.val_rmse_ms, 0.8 * mean_rmse_ms)
        << name << " failed to learn the synthetic law";
    EXPECT_GT(report.n_params, 0u);
    EXPECT_GT(report.train_time_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelLearnsTest,
                         ::testing::Values("CNN", "MLP", "LSTM"));

TEST(Trainer, ScaledLossFocusesBelowQos)
{
    // With heavy-tailed targets, the scaled loss should give a lower
    // RMSE *restricted to sub-QoS samples* than it does on the full
    // set including spikes. Smoke-level sanity of Eq. 2's intent.
    const FeatureConfig f = SmallFeatures();
    const Dataset all = SyntheticDataset(f, 400, 17);
    Rng rng(19);
    const auto [train, valid] = all.Split(0.9, rng);
    SinanCnn cnn(f, SinanCnnConfig{}, 23);
    TrainOptions opts;
    opts.epochs = 25;
    TrainLatencyModel(cnn, train, valid, f, opts);

    Dataset below;
    for (const Sample& s : valid.samples) {
        if (s.p99_ms <= f.qos_ms)
            below.samples.push_back(s);
    }
    ASSERT_FALSE(below.samples.empty());
    const double rmse_below = EvalRmseMs(cnn, below, f);
    const double rmse_all = EvalRmseMs(cnn, valid, f);
    EXPECT_LT(rmse_below, rmse_all + 1e-9);
}

TEST(Trainer, PredictP99MsAlignsWithDatasetOrder)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset d = SyntheticDataset(f, 20, 29);
    SinanCnn cnn(f, SinanCnnConfig{}, 31);
    const std::vector<double> preds = PredictP99Ms(cnn, d, f, 7);
    EXPECT_EQ(preds.size(), d.samples.size());
}

TEST(MultiTaskNn, JointForwardAndBackward)
{
    const FeatureConfig f = SmallFeatures();
    MultiTaskNn net(f, 37);
    const Dataset d = SyntheticDataset(f, 6, 37);
    std::vector<int> idx = {0, 1, 2, 3, 4, 5};
    const Batch b = d.MakeBatch(idx, 0, 6);
    Tensor lat, viol;
    net.Forward(b, lat, viol);
    EXPECT_EQ(lat.Shape(), (std::vector<int>{6, f.n_percentiles}));
    EXPECT_EQ(viol.Shape(), (std::vector<int>{6, 1}));
    Tensor dlat(lat.Shape()), dviol(viol.Shape());
    dlat.Fill(0.1f);
    dviol.Fill(0.1f);
    net.Backward(dlat, dviol); // must not throw
    EXPECT_GT(net.Params().size(), 0u);
}

TEST(HybridModel, TrainEvaluateAndReport)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset all = SyntheticDataset(f, 500, 41);
    Rng rng(43);
    const auto [train, valid] = all.Split(0.9, rng);
    HybridConfig cfg;
    cfg.train.epochs = 15;
    cfg.bt.n_trees = 80;
    HybridModel model(f, cfg, 47);
    const HybridReport report = model.Train(train, valid);

    EXPECT_GT(report.cnn.val_rmse_ms, 0.0);
    EXPECT_GT(report.bt_val_accuracy, 0.8);
    EXPECT_GT(report.bt_trees, 0);
    EXPECT_DOUBLE_EQ(model.ValRmseMs(), report.cnn.val_rmse_ms);

    // Evaluate candidate allocations on a fresh window.
    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 200, 2.0, 0.7, 150));
    const std::vector<std::vector<double>> allocs = {
        std::vector<double>(f.n_tiers, 0.4),
        std::vector<double>(f.n_tiers, 4.0),
    };
    const std::vector<Prediction> preds = model.Evaluate(w, allocs);
    ASSERT_EQ(preds.size(), 2u);
    for (const Prediction& p : preds) {
        EXPECT_EQ(p.latency_ms.size(),
                  static_cast<size_t>(f.n_percentiles));
        EXPECT_GE(p.p_violation, 0.0);
        EXPECT_LE(p.p_violation, 1.0);
    }
    // Starving the app must predict more violation risk than plenty.
    EXPECT_GT(preds[0].p_violation, preds[1].p_violation);
}

TEST(HybridModel, SaveLoadRoundTrip)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset all = SyntheticDataset(f, 200, 51);
    Rng rng(53);
    const auto [train, valid] = all.Split(0.9, rng);
    HybridConfig cfg;
    cfg.train.epochs = 4;
    cfg.bt.n_trees = 30;
    HybridModel a(f, cfg, 55);
    a.Train(train, valid);

    std::stringstream ss;
    a.Save(ss);
    HybridModel b(f, cfg, 999);
    b.Load(ss);
    EXPECT_DOUBLE_EQ(a.ValRmseMs(), b.ValRmseMs());

    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 100, 2.0, 0.5, 100));
    const std::vector<std::vector<double>> allocs = {
        std::vector<double>(f.n_tiers, 1.0)};
    const auto pa = a.Evaluate(w, allocs);
    const auto pb = b.Evaluate(w, allocs);
    EXPECT_DOUBLE_EQ(pa[0].P99(), pb[0].P99());
    EXPECT_DOUBLE_EQ(pa[0].p_violation, pb[0].p_violation);
}

TEST(SinanCnn, ForwardBitIdenticalAcrossThreadCounts)
{
    // The conv/dense kernels run on the shared pool; forward outputs
    // must not depend on the thread count.
    const FeatureConfig f = SmallFeatures();
    SinanCnn cnn(f, SinanCnnConfig{}, 3);
    const Dataset d = SyntheticDataset(f, 16, 3);
    std::vector<int> idx(16);
    std::iota(idx.begin(), idx.end(), 0);
    const Batch b = d.MakeBatch(idx, 0, 16);

    const int saved = NumThreads();
    SetNumThreads(1);
    const Tensor serial = cnn.Forward(b);
    for (int threads : {2, 4, 8}) {
        SetNumThreads(threads);
        const Tensor parallel = cnn.Forward(b);
        ASSERT_EQ(parallel.Size(), serial.Size());
        for (size_t i = 0; i < serial.Size(); ++i)
            ASSERT_EQ(parallel[i], serial[i])
                << "threads=" << threads << " element " << i;
    }
    SetNumThreads(saved);
}

TEST(HybridModel, EvaluateBitIdenticalAcrossThreadCounts)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset all = SyntheticDataset(f, 300, 61);
    Rng rng(63);
    const auto [train, valid] = all.Split(0.9, rng);
    HybridConfig cfg;
    cfg.train.epochs = 4;
    cfg.bt.n_trees = 40;
    HybridModel model(f, cfg, 65);
    model.Train(train, valid);

    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 150, 2.0, 0.6, 120));
    // Enough candidates to span several ParallelFor blocks.
    std::vector<std::vector<double>> allocs;
    for (int i = 0; i < 40; ++i)
        allocs.push_back(std::vector<double>(
            f.n_tiers, 0.4 + 0.1 * static_cast<double>(i)));

    const int saved = NumThreads();
    SetNumThreads(1);
    const std::vector<Prediction> serial = model.Evaluate(w, allocs);
    for (int threads : {2, 4, 8}) {
        SetNumThreads(threads);
        const std::vector<Prediction> parallel = model.Evaluate(w, allocs);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i) {
            ASSERT_EQ(parallel[i].latency_ms, serial[i].latency_ms)
                << "threads=" << threads << " candidate " << i;
            ASSERT_EQ(parallel[i].p_violation, serial[i].p_violation)
                << "threads=" << threads << " candidate " << i;
        }
    }
    SetNumThreads(saved);
}

TEST(HybridModel, CloneEvaluatesIdentically)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset all = SyntheticDataset(f, 200, 67);
    Rng rng(69);
    const auto [train, valid] = all.Split(0.9, rng);
    HybridConfig cfg;
    cfg.train.epochs = 3;
    cfg.bt.n_trees = 25;
    HybridModel model(f, cfg, 71);
    model.Train(train, valid);
    const std::unique_ptr<HybridModel> clone = model.Clone();

    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 100, 2.0, 0.5, 100));
    const std::vector<std::vector<double>> allocs = {
        std::vector<double>(f.n_tiers, 1.0),
        std::vector<double>(f.n_tiers, 3.0),
    };
    const auto pa = model.Evaluate(w, allocs);
    const auto pb = clone->Evaluate(w, allocs);
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].latency_ms, pb[i].latency_ms);
        EXPECT_DOUBLE_EQ(pa[i].p_violation, pb[i].p_violation);
    }
    EXPECT_DOUBLE_EQ(clone->ValRmseMs(), model.ValRmseMs());
}

TEST(HybridModel, EmptyEvaluationReturnsEmpty)
{
    const FeatureConfig f = SmallFeatures();
    HybridConfig cfg;
    HybridModel model(f, cfg, 57);
    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, 100, 2.0, 0.5, 100));
    EXPECT_TRUE(model.Evaluate(w, {}).empty());
}


TEST(BuildInput, ClipsRunawayInputs)
{
    FeatureConfig f = SmallFeatures();
    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t) {
        IntervalObservation obs =
            MakeObs(f, t, 100, 4.0, 0.5, 60.0 * f.qos_ms); // explosion
        obs.tiers[0].rss_mb = 1e9;
        w.Push(obs);
    }
    const Sample s =
        BuildInput(w, std::vector<double>(f.n_tiers, 1e6));
    for (size_t i = 0; i < s.xlh.Size(); ++i)
        EXPECT_LE(s.xlh[i], 4.0f);
    for (size_t i = 0; i < s.xrh.Size(); ++i)
        EXPECT_LE(s.xrh[i], 4.0f);
    for (size_t i = 0; i < s.xrc.Size(); ++i)
        EXPECT_LE(s.xrc[i], 4.0f);
}

TEST(PersistenceResidual, AddsNewestLatencyToOutput)
{
    const FeatureConfig f = SmallFeatures();
    const Dataset d = SyntheticDataset(f, 4, 61);
    std::vector<int> idx = {0, 1, 2, 3};
    const Batch b = d.MakeBatch(idx, 0, 4);
    Tensor zero({4, f.n_percentiles});
    AddPersistenceResidual(b, f, zero);
    const int base = (f.history - 1) * f.n_percentiles;
    for (int i = 0; i < 4; ++i)
        for (int p = 0; p < f.n_percentiles; ++p)
            EXPECT_FLOAT_EQ(zero.At(i, p), b.xlh.At(i, base + p));
}

TEST(PersistenceResidual, UntrainedModelPredictsRoughPersistence)
{
    // With small random weights the residual head dominates: an
    // untrained CNN's prediction is near the newest observed latency.
    const FeatureConfig f = SmallFeatures();
    SinanCnn cnn(f, SinanCnnConfig{}, 71);
    const Dataset d = SyntheticDataset(f, 16, 71);
    std::vector<int> idx(16);
    std::iota(idx.begin(), idx.end(), 0);
    const Batch b = d.MakeBatch(idx, 0, 16);
    const Tensor y = cnn.Forward(b);
    const int base = (f.history - 1) * f.n_percentiles;
    for (int i = 0; i < 16; ++i) {
        const double persist = b.xlh.At(i, base + f.n_percentiles - 1);
        EXPECT_NEAR(y.At(i, f.n_percentiles - 1), persist,
                    std::max(1.0, std::abs(persist)) * 2.0);
    }
}

} // namespace
} // namespace sinan
