/**
 * @file
 * Tests for the autoscaling and PowerChief baselines.
 */
#include <gtest/gtest.h>

#include "app/apps.h"
#include "baselines/autoscale.h"
#include "baselines/powerchief.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;

/** Toy app with wide CPU bounds so rules apply unclamped. */
Application
ToyApp(int n_tiers)
{
    Application app;
    app.name = "toy";
    app.qos_ms = 500.0;
    for (int i = 0; i < n_tiers; ++i) {
        TierSpec t;
        t.name = "t" + std::to_string(i);
        t.min_cpu = 0.1;
        t.max_cpu = 100.0;
        t.init_cpu = 2.0;
        app.tiers.push_back(t);
    }
    RequestType rt;
    rt.root.tier = 0;
    app.request_types.push_back(rt);
    return app;
}

TEST(AutoScaleOpt, AppliesPaperBands)
{
    const Application app = ToyApp(1);
    AutoScaler opt = MakeAutoScaleOpt();
    const FeatureConfig f = SmallFeatures(1, 3);
    const std::vector<double> alloc = {10.0};

    auto decide = [&](double util) {
        return opt.Decide(MakeObs(f, 0, 100, 10.0, util, 100), alloc,
                          app)[0];
    };
    EXPECT_NEAR(decide(0.75), 13.0, 1e-9);  // [70,100] -> +30%
    EXPECT_NEAR(decide(0.65), 11.0, 1e-9);  // [60,70)  -> +10%
    EXPECT_NEAR(decide(0.50), 10.0, 1e-9);  // stable band
    EXPECT_NEAR(decide(0.35), 9.0, 1e-9);   // [30,40)  -> -10%
    EXPECT_NEAR(decide(0.10), 7.0, 1e-9);   // [0,30)   -> -30%
}

TEST(AutoScaleCons, AppliesConservativeBands)
{
    const Application app = ToyApp(1);
    AutoScaler cons = MakeAutoScaleCons();
    const FeatureConfig f = SmallFeatures(1, 3);
    const std::vector<double> alloc = {10.0};
    auto decide = [&](double util) {
        return cons.Decide(MakeObs(f, 0, 100, 10.0, util, 100), alloc,
                           app)[0];
    };
    EXPECT_NEAR(decide(0.60), 13.0, 1e-9);  // [50,100] -> +30%
    EXPECT_NEAR(decide(0.40), 11.0, 1e-9);  // [30,50)  -> +10%
    EXPECT_NEAR(decide(0.20), 10.0, 1e-9);  // stable band
    EXPECT_NEAR(decide(0.05), 9.0, 1e-9);   // [0,10)   -> -10%
}

TEST(AutoScaler, ConsIsMoreConservativeThanOpt)
{
    // At 55% utilization Cons grows 30% while Opt holds.
    const Application app = ToyApp(1);
    AutoScaler opt = MakeAutoScaleOpt();
    AutoScaler cons = MakeAutoScaleCons();
    const FeatureConfig f = SmallFeatures(1, 3);
    const IntervalObservation obs = MakeObs(f, 0, 100, 10.0, 0.55, 100);
    const std::vector<double> alloc = {10.0};
    EXPECT_GT(cons.Decide(obs, alloc, app)[0],
              opt.Decide(obs, alloc, app)[0]);
}

TEST(AutoScaler, ClampsToSpec)
{
    Application app = ToyApp(1);
    app.tiers[0].max_cpu = 10.5;
    app.tiers[0].min_cpu = 9.5;
    AutoScaler opt = MakeAutoScaleOpt();
    const FeatureConfig f = SmallFeatures(1, 3);
    const std::vector<double> alloc = {10.0};
    EXPECT_DOUBLE_EQ(
        opt.Decide(MakeObs(f, 0, 100, 10, 0.9, 100), alloc, app)[0],
        10.5);
    EXPECT_DOUBLE_EQ(
        opt.Decide(MakeObs(f, 0, 100, 10, 0.05, 100), alloc, app)[0],
        9.5);
}

TEST(PowerChief, BoostsLongestQueueTier)
{
    const Application app = ToyApp(3);
    PowerChief pc;
    const FeatureConfig f = SmallFeatures(3, 3);
    IntervalObservation obs = MakeObs(f, 0, 100, 4.0, 0.5, 100);
    for (TierMetrics& m : obs.tiers) {
        m.queue_wait_s = 0.0;
        m.queue_len = 0.0;
    }
    obs.tiers[1].queue_wait_s = 0.05; // the apparent bottleneck
    obs.tiers[1].queue_len = 20.0;
    const std::vector<double> alloc = {4.0, 4.0, 4.0};
    const std::vector<double> next = pc.Decide(obs, alloc, app);
    EXPECT_GT(next[1], alloc[1]);
}

TEST(PowerChief, ReclaimsFromIdleTiers)
{
    const Application app = ToyApp(3);
    PowerChief pc;
    const FeatureConfig f = SmallFeatures(3, 3);
    IntervalObservation obs = MakeObs(f, 0, 100, 4.0, 0.1, 100);
    for (TierMetrics& m : obs.tiers) {
        m.queue_wait_s = 0.0;
        m.queue_len = 0.0;
    }
    const std::vector<double> alloc = {4.0, 4.0, 4.0};
    const std::vector<double> next = pc.Decide(obs, alloc, app);
    for (size_t i = 0; i < next.size(); ++i)
        EXPECT_LT(next[i], alloc[i]);
}

TEST(PowerChief, LeavesBusyUnqueuedTiersAlone)
{
    const Application app = ToyApp(2);
    PowerChief pc;
    const FeatureConfig f = SmallFeatures(2, 3);
    IntervalObservation obs = MakeObs(f, 0, 100, 4.0, 0.7, 100);
    for (TierMetrics& m : obs.tiers) {
        m.queue_wait_s = 0.0;
        m.queue_len = 0.0;
    }
    const std::vector<double> alloc = {4.0, 4.0};
    const std::vector<double> next = pc.Decide(obs, alloc, app);
    EXPECT_DOUBLE_EQ(next[0], 4.0);
    EXPECT_DOUBLE_EQ(next[1], 4.0);
}

TEST(PowerChief, MisattributesUnderBackpressure)
{
    // The paper's core critique: when a downstream tier is the culprit
    // but the upstream tier shows the longer ingress queue (slots held
    // waiting), PowerChief boosts the upstream symptom.
    const Application app = ToyApp(2);
    PowerChiefConfig cfg;
    cfg.boost_top_k = 1;
    PowerChief pc(cfg);
    const FeatureConfig f = SmallFeatures(2, 3);
    IntervalObservation obs = MakeObs(f, 0, 100, 4.0, 0.5, 600);
    // Upstream (0) queues visibly; downstream (1) is saturated but its
    // queue is short because upstream back-pressure throttles arrivals.
    obs.tiers[0].queue_wait_s = 0.10;
    obs.tiers[0].queue_len = 30.0;
    obs.tiers[0].cpu_used = 1.0;
    obs.tiers[1].queue_wait_s = 0.01;
    obs.tiers[1].queue_len = 2.0;
    obs.tiers[1].cpu_used = 4.0; // fully used
    const std::vector<double> alloc = {4.0, 4.0};
    const std::vector<double> next = pc.Decide(obs, alloc, app);
    EXPECT_GT(next[0], alloc[0]);          // symptom boosted
    EXPECT_DOUBLE_EQ(next[1], alloc[1]);   // culprit ignored
}

} // namespace
} // namespace sinan
