/**
 * @file
 * Tests for the what-if allocation-sensitivity explorer.
 */
#include <gtest/gtest.h>

#include "explain/whatif.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;
using testutil::SyntheticDataset;

class WhatIfFixture : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        features_ = new FeatureConfig(SmallFeatures(4, 3));
        const Dataset all = SyntheticDataset(*features_, 500, 91);
        Rng rng(93);
        const auto [train, valid] = all.Split(0.9, rng);
        HybridConfig cfg;
        cfg.train.epochs = 12;
        cfg.bt.n_trees = 60;
        model_ = new HybridModel(*features_, cfg, 95);
        model_->Train(train, valid);
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        delete features_;
        model_ = nullptr;
        features_ = nullptr;
    }

    static MetricWindow
    HealthyWindow()
    {
        MetricWindow w(*features_);
        for (int t = 0; t < features_->history; ++t)
            w.Push(MakeObs(*features_, t, 200, 2.0, 0.7, 150));
        return w;
    }

    static FeatureConfig* features_;
    static HybridModel* model_;
};

FeatureConfig* WhatIfFixture::features_ = nullptr;
HybridModel* WhatIfFixture::model_ = nullptr;

TEST_F(WhatIfFixture, SweepCoversRequestedRange)
{
    const MetricWindow w = HealthyWindow();
    const std::vector<double> base(features_->n_tiers, 2.0);
    const WhatIfCurve c =
        SweepTierAllocation(*model_, w, base, 1, 0.5, 4.0, 8);
    ASSERT_EQ(c.points.size(), 8u);
    EXPECT_DOUBLE_EQ(c.points.front().cpu, 0.5);
    EXPECT_DOUBLE_EQ(c.points.back().cpu, 4.0);
    EXPECT_EQ(c.tier, 1);
    for (const WhatIfPoint& p : c.points) {
        EXPECT_GE(p.p_violation, 0.0);
        EXPECT_LE(p.p_violation, 1.0);
    }
}

TEST_F(WhatIfFixture, RejectsBadArguments)
{
    const MetricWindow w = HealthyWindow();
    const std::vector<double> base(features_->n_tiers, 2.0);
    EXPECT_THROW(SweepTierAllocation(*model_, w, base, 99, 0.5, 4.0, 8),
                 std::out_of_range);
    EXPECT_THROW(SweepTierAllocation(*model_, w, base, 0, 4.0, 0.5, 8),
                 std::invalid_argument);
    EXPECT_THROW(SweepTierAllocation(*model_, w, base, 0, 0.5, 4.0, 1),
                 std::invalid_argument);
}

TEST_F(WhatIfFixture, MinSafeCpuRespectsThresholds)
{
    WhatIfCurve c;
    c.points = {
        {0.5, 600.0, 0.9},
        {1.0, 400.0, 0.4},
        {2.0, 300.0, 0.1},
        {4.0, 250.0, 0.02},
    };
    EXPECT_DOUBLE_EQ(c.MinSafeCpu(500.0, 0.2), 2.0);
    EXPECT_DOUBLE_EQ(c.MinSafeCpu(500.0, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(c.MinSafeCpu(100.0, 0.5), -1.0);
}

TEST_F(WhatIfFixture, SweepAllTiersReturnsOneCurvePerTier)
{
    Application app;
    app.qos_ms = features_->qos_ms;
    for (int i = 0; i < features_->n_tiers; ++i) {
        TierSpec t;
        t.name = "t" + std::to_string(i);
        t.min_cpu = 0.5;
        t.max_cpu = 6.0;
        app.tiers.push_back(t);
    }
    RequestType rt;
    rt.root.tier = 0;
    app.request_types.push_back(rt);

    const MetricWindow w = HealthyWindow();
    const std::vector<double> base(features_->n_tiers, 2.0);
    const auto curves = SweepAllTiers(*model_, w, base, app, 5);
    ASSERT_EQ(curves.size(), app.tiers.size());
    for (size_t t = 0; t < curves.size(); ++t) {
        EXPECT_EQ(curves[t].tier, static_cast<int>(t));
        EXPECT_EQ(curves[t].points.size(), 5u);
        EXPECT_DOUBLE_EQ(curves[t].points.front().cpu, 0.5);
        EXPECT_DOUBLE_EQ(curves[t].points.back().cpu, 6.0);
    }
}

} // namespace
} // namespace sinan
