/**
 * @file
 * Shared helpers for model-level tests: synthetic interval observations
 * and datasets with a known latency law, so learning tests can assert
 * that models recover it.
 */
#ifndef SINAN_TESTS_TEST_UTIL_H
#define SINAN_TESTS_TEST_UTIL_H

#include <vector>

#include "common/rng.h"
#include "models/features.h"

namespace sinan {
namespace testutil {

/** A small feature space used across model tests. */
inline FeatureConfig
SmallFeatures(int n_tiers = 4, int history = 3)
{
    FeatureConfig f;
    f.n_tiers = n_tiers;
    f.history = history;
    f.qos_ms = 500.0;
    f.violation_lookahead = 3;
    return f;
}

/** Builds one synthetic observation with the given utilization level. */
inline IntervalObservation
MakeObs(const FeatureConfig& f, double time_s, double rps, double cpu_limit,
        double util, double p99_ms, Rng* rng = nullptr)
{
    IntervalObservation obs;
    obs.time_s = time_s;
    obs.rps = rps;
    obs.completed_rps = rps;
    for (int i = 0; i < f.n_tiers; ++i) {
        TierMetrics m;
        m.cpu_limit = cpu_limit;
        m.cpu_used = cpu_limit * util;
        m.rss_mb = 100.0 + (rng ? rng->Uniform(0, 5) : 0.0);
        m.cache_mb = 50.0;
        m.rx_pps = rps * 4.0;
        m.tx_pps = rps * 4.0;
        m.queue_len = util > 0.9 ? 10.0 : 0.5;
        m.active = 2.0;
        m.queue_wait_s = util > 0.9 ? 0.02 : 0.0;
        obs.tiers.push_back(m);
    }
    obs.latency_ms = {p99_ms * 0.8, p99_ms * 0.85, p99_ms * 0.9,
                      p99_ms * 0.95, p99_ms};
    return obs;
}

/** The synthetic queueing law: fine above the boundary, exploding below
 *  it. lat > 500 ms iff ratio < ~0.45. */
inline double
SyntheticLaw(double ratio)
{
    return ratio >= 1.0 ? 100.0
                        : 100.0 / std::max(0.1, ratio * ratio);
}

/**
 * A synthetic dataset mirroring the real prediction task: the history
 * window reflects the steady state under the *current* allocation
 * (utilization and latency consistent with the law), and the labeled
 * candidate allocation X_RC perturbs it by a bounded factor. Latency
 * explodes as allocation drops below the demand.
 */
inline Dataset
SyntheticDataset(const FeatureConfig& f, int n_samples, uint64_t seed)
{
    Rng rng(seed);
    Dataset data;
    MetricWindow window(f);
    for (int k = 0; k < n_samples; ++k) {
        const double rps = rng.Uniform(50, 400);
        const double demand = rps * 0.02; // cores needed in total
        const double ratio_cur = rng.Uniform(0.35, 2.5);
        const double alloc_cur = ratio_cur * demand;
        const double lat_cur = SyntheticLaw(ratio_cur);
        const double util = std::min(1.0, 1.0 / ratio_cur);

        window.Clear();
        for (int t = 0; t < f.history; ++t) {
            window.Push(MakeObs(f, t, rps, alloc_cur / f.n_tiers, util,
                                lat_cur + rng.Uniform(0, 15), &rng));
        }

        const double mult = rng.Uniform(0.6, 1.5);
        const double ratio_next = ratio_cur * mult;
        std::vector<double> alloc(f.n_tiers,
                                  alloc_cur * mult / f.n_tiers);
        Sample s = BuildInput(window, alloc);
        const double lat = SyntheticLaw(ratio_next) + rng.Uniform(0, 20);
        s.y_latency.resize(f.n_percentiles);
        for (int p = 0; p < f.n_percentiles; ++p) {
            s.y_latency[p] = static_cast<float>(
                lat * (0.8 + 0.05 * p) / f.qos_ms);
        }
        s.p99_ms = lat;
        s.violation = lat > f.qos_ms ? 1.0f : 0.0f;
        data.samples.push_back(std::move(s));
    }
    return data;
}

} // namespace testutil
} // namespace sinan

#endif // SINAN_TESTS_TEST_UTIL_H
