/**
 * @file
 * Fleet harness contract tests (src/fleet):
 *
 *  - byte-identical fleet traces at 1, 3, and 8 threads across mixed
 *    hotel/social fleets, with and without chaos — the fleet
 *    determinism contract (any thread count, any shard-scheduling
 *    order);
 *  - shard-count independence: a cluster's full telemetry (run log +
 *    decision trace + metrics) is byte-identical whether the cluster
 *    runs solo under RunManaged or inside a 32-shard fleet;
 *  - model-clone isolation: a chaotic neighbour sharing the clone pool
 *    must not perturb a clean shard's decisions;
 *  - the --fleet-shard override grammar (parse + resolve validation).
 *
 * Sinan shards load the bundled bench_cache models (no training), so
 * the tests exercise the real cached-trunk Evaluate path.
 */
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>

#include "app/apps.h"
#include "common/thread_pool.h"
#include "fleet/fleet.h"
#include "fleet/fleet_log.h"
#include "harness/runlog.h"
#include "harness/telemetry_log.h"

namespace sinan {
namespace {

/** Loads a bundled bench_cache model exactly like the bench cache-hit
 *  path (same FeatureConfig recipe and hybrid hyper-parameters). */
std::unique_ptr<HybridModel>
LoadBundledModel(const Application& app, const std::string& name)
{
    const std::string path =
        std::string(SINAN_REPO_ROOT) + "/bench_cache/" + name + ".model";
    if (!std::filesystem::exists(path))
        return nullptr;
    const PipelineConfig pcfg; // history / lookahead defaults
    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = app.qos_ms;
    auto model =
        std::make_unique<HybridModel>(f, DefaultHybridConfig(), 1);
    std::ifstream in(path, std::ios::binary);
    model->Load(in);
    return model;
}

class FleetFixture : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        hotel_app_ = new Application(BuildHotelReservation());
        social_app_ = new Application(BuildSocialNetwork());
        hotel_model_ = LoadBundledModel(*hotel_app_, "hotel").release();
        social_model_ =
            LoadBundledModel(*social_app_, "social").release();
    }

    static void
    TearDownTestSuite()
    {
        delete hotel_model_;
        delete social_model_;
        delete hotel_app_;
        delete social_app_;
        hotel_model_ = social_model_ = nullptr;
        hotel_app_ = social_app_ = nullptr;
    }

    static bool
    HaveModels()
    {
        return hotel_model_ != nullptr && social_model_ != nullptr;
    }

    static FleetModels
    Models()
    {
        FleetModels m;
        m.hotel = hotel_model_;
        m.social = social_model_;
        return m;
    }

    static FleetApps
    Apps()
    {
        FleetApps a;
        a.hotel = hotel_app_;
        a.social = social_app_;
        return a;
    }

    static Application* hotel_app_;
    static Application* social_app_;
    static HybridModel* hotel_model_;
    static HybridModel* social_model_;
};

Application* FleetFixture::hotel_app_ = nullptr;
Application* FleetFixture::social_app_ = nullptr;
HybridModel* FleetFixture::hotel_model_ = nullptr;
HybridModel* FleetFixture::social_model_ = nullptr;

/** Short-horizon fleet base: 10 decision intervals, 3 s warmup. */
FleetConfig
BaseConfig(int n_clusters, uint64_t seed)
{
    FleetConfig cfg;
    cfg.n_clusters = n_clusters;
    cfg.duration_s = 10.0;
    cfg.warmup_s = 3.0;
    cfg.seed = seed;
    return cfg;
}

/** The deterministic byte surface of one fleet run. */
struct FleetBytes {
    std::string trace;
    std::string summary;
};

FleetBytes
RunAtThreads(const FleetConfig& cfg, const FleetModels& models,
             const FleetApps& apps, int threads)
{
    SetNumThreads(threads);
    const FleetResult result = RunFleet(cfg, models, apps);
    SetNumThreads(0); // restore the SINAN_THREADS / hardware default
    FleetBytes bytes;
    bytes.trace = FleetTraceToCsv(result);
    bytes.summary =
        FleetSummaryToJson(result, /*include_timing=*/false);
    return bytes;
}

ShardOverride
Override(const std::string& text)
{
    return ParseShardOverride(text);
}

/** Mixed default fleet: alternating social/hotel, all Sinan-managed. */
FleetConfig
MixedSinanConfig(uint64_t seed)
{
    return BaseConfig(6, seed);
}

/** Every manager kind plus chaos on two shards. */
FleetConfig
ManagersAndChaosConfig(uint64_t seed)
{
    FleetConfig cfg = BaseConfig(8, seed);
    cfg.overrides.push_back(Override("1:manager=opt"));
    cfg.overrides.push_back(Override("3:manager=powerchief"));
    cfg.overrides.push_back(Override("5:manager=hold"));
    cfg.overrides.push_back(
        Override("2:faults=stall@3+2:tier=1;spike@6:mag=300"));
    cfg.overrides.push_back(Override("6:faults=chaos:tier-stall"));
    cfg.overrides.push_back(Override("7:app=hotel,users=1500"));
    return cfg;
}

/** Hotel-only fleet with per-shard fault and seed overrides. */
FleetConfig
HotelChaosConfig(uint64_t seed)
{
    FleetConfig cfg = BaseConfig(5, seed);
    cfg.default_app = "hotel";
    cfg.overrides.push_back(
        Override("0:faults=caploss@2+3:tier=2,mag=0.6"));
    cfg.overrides.push_back(Override("3:manager=cons"));
    cfg.overrides.push_back(Override("4:seed=999,users=2500"));
    return cfg;
}

/** Uncertainty-aware scheduling fleet-wide, with the correlated and
 *  flash-crowd chaos scenarios on two shards. */
FleetConfig
UncertainChaosConfig(uint64_t seed)
{
    FleetConfig cfg = BaseConfig(6, seed);
    cfg.scheduler.uncertainty.enabled = true;
    cfg.overrides.push_back(
        Override("1:faults=chaos:correlated-outage"));
    cfg.overrides.push_back(Override("4:faults=chaos:flash-crowd"));
    cfg.overrides.push_back(Override("5:faults=chaos:stale-telemetry"));
    return cfg;
}

TEST_F(FleetFixture, TraceBytesIdenticalAcrossThreadCounts)
{
    if (!HaveModels())
        GTEST_SKIP() << "bundled bench_cache models not present";
    const FleetConfig configs[] = {MixedSinanConfig(7),
                                   ManagersAndChaosConfig(21),
                                   HotelChaosConfig(33),
                                   UncertainChaosConfig(47)};
    for (const FleetConfig& cfg : configs) {
        const FleetBytes serial = RunAtThreads(cfg, Models(), Apps(), 1);
        const FleetBytes par3 = RunAtThreads(cfg, Models(), Apps(), 3);
        const FleetBytes par8 = RunAtThreads(cfg, Models(), Apps(), 8);
        EXPECT_EQ(serial.trace, par3.trace);
        EXPECT_EQ(serial.trace, par8.trace);
        EXPECT_EQ(serial.summary, par3.summary);
        EXPECT_EQ(serial.summary, par8.summary);
        EXPECT_FALSE(serial.trace.empty());
    }
}

/** Reconstructs shard @p spec as a solo RunManaged with its own model
 *  clone, mirroring exactly what the fleet builds internally. */
RunResult
RunSolo(const ShardSpec& spec, const FleetConfig& cfg,
        const Application& app, const HybridModel* model)
{
    RunConfig rc;
    rc.duration_s = cfg.duration_s;
    rc.warmup_s = cfg.warmup_s;
    rc.sim = cfg.sim;
    rc.cluster = cfg.cluster;
    rc.bursts = cfg.bursts;
    if (!spec.faults.empty())
        rc.faults = ParseFaultSpec(spec.faults);
    rc.seed = spec.seed;
    const ConstantLoad load(spec.users);
    if (spec.manager == "sinan") {
        const std::unique_ptr<HybridModel> clone = model->Clone();
        SinanScheduler scheduler(*clone, cfg.scheduler);
        return RunManaged(app, scheduler, load, rc);
    }
    const std::unique_ptr<ResourceManager> manager =
        MakeBaselineManager(spec.manager);
    return RunManaged(app, *manager, load, rc);
}

TEST_F(FleetFixture, ClusterTraceIndependentOfFleetSize)
{
    if (!HaveModels())
        GTEST_SKIP() << "bundled bench_cache models not present";
    FleetConfig cfg = BaseConfig(32, 11);
    cfg.overrides.push_back(
        Override("7:faults=stall@2+3:tier=1;drop@6+2"));
    cfg.overrides.push_back(Override("30:manager=opt"));

    SetNumThreads(8);
    const FleetResult fleet = RunFleet(cfg, Models(), Apps());
    SetNumThreads(0);

    const std::vector<ShardSpec> specs =
        ResolveFleetShards(cfg, Apps());
    for (const int k : {0, 7, 30, 31}) {
        const ShardSpec& spec = specs[static_cast<size_t>(k)];
        const Application& app =
            spec.app == "hotel" ? *hotel_app_ : *social_app_;
        const HybridModel* model =
            spec.app == "hotel" ? hotel_model_ : social_model_;
        const RunResult solo = RunSolo(spec, cfg, app, model);
        const RunResult& in_fleet =
            fleet.clusters[static_cast<size_t>(k)].result;
        EXPECT_EQ(RunLogToCsv(solo, app), RunLogToCsv(in_fleet, app))
            << "run log diverged for cluster " << k;
        EXPECT_EQ(DecisionTraceToCsv(solo.decision_trace),
                  DecisionTraceToCsv(in_fleet.decision_trace))
            << "decision trace diverged for cluster " << k;
        EXPECT_EQ(solo.metrics.ToCsv(), in_fleet.metrics.ToCsv())
            << "metrics diverged for cluster " << k;
    }
}

TEST_F(FleetFixture, CleanShardUnaffectedByChaoticPoolNeighbour)
{
    if (!HaveModels())
        GTEST_SKIP() << "bundled bench_cache models not present";
    // The clean shard and its chaotic neighbour share one social clone
    // pool; faults that derail the neighbour's model inputs (stalls,
    // latency spikes, NaN telemetry) must not bleed into the clean
    // shard's decisions through workspace residue.
    const std::string clean = ":app=social,users=260,seed=4242";
    FleetConfig pair = BaseConfig(2, 5);
    pair.overrides.push_back(Override("0" + clean));
    pair.overrides.push_back(Override(
        "1:app=social,users=400,"
        "faults=stall@1+6:tier=2;spike@2+5:mag=800;nan@4+3"));
    FleetConfig alone = BaseConfig(1, 5);
    alone.overrides.push_back(Override("0" + clean));

    SetNumThreads(8);
    const FleetResult with_neighbour =
        RunFleet(pair, Models(), Apps());
    const FleetResult solo = RunFleet(alone, Models(), Apps());
    SetNumThreads(0);

    const RunResult& noisy = with_neighbour.clusters[0].result;
    const RunResult& quiet = solo.clusters[0].result;
    EXPECT_EQ(RunLogToCsv(quiet, *social_app_),
              RunLogToCsv(noisy, *social_app_));
    EXPECT_EQ(DecisionTraceToCsv(quiet.decision_trace),
              DecisionTraceToCsv(noisy.decision_trace));
    EXPECT_EQ(quiet.metrics.ToCsv(), noisy.metrics.ToCsv());
    // Sanity: the chaotic neighbour actually had a rough ride.
    EXPECT_GT(with_neighbour.clusters[1].spec.faults.size(), 0u);
}

TEST(FleetOverride, ParsesEveryKeyAndSwallowsFaultCommas)
{
    const ShardOverride ov = ParseShardOverride(
        "12:app=hotel,manager=sinan,users=1800,seed=77,"
        "faults=caploss@3+2:tier=1,mag=0.6;spike@8:mag=250");
    EXPECT_EQ(ov.index, 12);
    EXPECT_EQ(ov.app, "hotel");
    EXPECT_EQ(ov.manager, "sinan");
    EXPECT_DOUBLE_EQ(ov.users, 1800.0);
    EXPECT_EQ(ov.seed, 77u);
    EXPECT_TRUE(ov.faults_set);
    EXPECT_EQ(ov.faults, "caploss@3+2:tier=1,mag=0.6;spike@8:mag=250");
}

void
ExpectOverrideError(const std::string& text, const std::string& what)
{
    try {
        ParseShardOverride(text);
        FAIL() << "expected ParseShardOverride to reject '" << text
               << "'";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
            << "message '" << e.what() << "' lacks '" << what << "'";
    }
}

TEST(FleetOverride, RejectsMalformedOverrides)
{
    ExpectOverrideError("nocolon", "expected 'INDEX:key=val");
    ExpectOverrideError("x:app=hotel", "bad shard index");
    ExpectOverrideError("3:", "expected at least one key=val");
    ExpectOverrideError("3:color=red", "unknown key 'color'");
    ExpectOverrideError("3:app=bank", "unknown app 'bank'");
    ExpectOverrideError("3:manager=llm", "unknown manager 'llm'");
    ExpectOverrideError("3:users=-5", "users must be > 0");
    ExpectOverrideError("3:users=12x", "bad number");
    ExpectOverrideError("3:seed=0", "seed must be > 0");
    ExpectOverrideError("3:users=5,", "trailing ','");
}

TEST(FleetResolve, ValidatesFleetShape)
{
    const Application hotel = BuildHotelReservation();
    const Application social = BuildSocialNetwork();
    const FleetApps apps{&hotel, &social};
    FleetConfig cfg;
    cfg.n_clusters = 4;
    cfg.overrides.push_back(ParseShardOverride("1:manager=hold"));
    cfg.overrides.push_back(ParseShardOverride("3:app=hotel"));
    const std::vector<ShardSpec> specs = ResolveFleetShards(cfg, apps);
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].app, "social"); // default mix alternates
    EXPECT_EQ(specs[1].app, "hotel");
    EXPECT_EQ(specs[1].manager, "hold");
    EXPECT_EQ(specs[3].app, "hotel");
    EXPECT_GT(specs[0].users, 0.0);
    EXPECT_NE(specs[0].seed, specs[1].seed); // derived seeds differ

    FleetConfig dup = cfg;
    dup.overrides.push_back(ParseShardOverride("1:users=99"));
    EXPECT_THROW(ResolveFleetShards(dup, apps),
                 std::invalid_argument);

    FleetConfig range = cfg;
    range.overrides.push_back(ParseShardOverride("9:users=99"));
    EXPECT_THROW(ResolveFleetShards(range, apps),
                 std::invalid_argument);

    FleetConfig badfault = cfg;
    badfault.overrides.push_back(
        ParseShardOverride("2:faults=warp@1"));
    EXPECT_THROW(ResolveFleetShards(badfault, apps),
                 std::invalid_argument);

    FleetConfig empty = cfg;
    empty.n_clusters = 0;
    EXPECT_THROW(ResolveFleetShards(empty, apps),
                 std::invalid_argument);
}

} // namespace
} // namespace sinan
