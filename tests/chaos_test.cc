/**
 * @file
 * Chaos suite: the fault-injection subsystem end to end. Covers the
 * `--faults` spec grammar, the named scenario catalog, byte-identical
 * determinism of fault runs across thread counts, the scheduler's
 * graceful-degradation guarantees under every scenario (no throw, no
 * crash, watchdog engagement), the baselines' hold-on-degraded guard,
 * and recovery-time accounting.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/apps.h"
#include "baselines/autoscale.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "harness/harness.h"
#include "harness/telemetry_log.h"
#include "sim/fault_injector.h"

namespace sinan {
namespace {

// ---- spec grammar ----------------------------------------------------

TEST(FaultSpecTest, ParsesSingleEventWithDefaults)
{
    const FaultSchedule s = ParseFaultSpec("drop@10");
    ASSERT_EQ(s.events.size(), 1u);
    EXPECT_EQ(s.events[0].kind, FaultKind::kTelemetryDrop);
    EXPECT_EQ(s.events[0].start, 10);
    EXPECT_EQ(s.events[0].duration, 1);
    EXPECT_EQ(s.events[0].tier, -1);
    EXPECT_EQ(s.EndInterval(), 11);
}

TEST(FaultSpecTest, ParsesFullEventList)
{
    const FaultSchedule s = ParseFaultSpec(
        "stall@5+3:tier=2; caploss@8+2:tier=0,mag=0.5; spike@4:mag=250");
    ASSERT_EQ(s.events.size(), 3u);
    EXPECT_EQ(s.events[0].kind, FaultKind::kTierStall);
    EXPECT_EQ(s.events[0].tier, 2);
    EXPECT_EQ(s.events[0].duration, 3);
    EXPECT_EQ(s.events[1].kind, FaultKind::kCapacityLoss);
    EXPECT_DOUBLE_EQ(s.events[1].magnitude, 0.5);
    EXPECT_EQ(s.events[2].kind, FaultKind::kLatencySpike);
    EXPECT_DOUBLE_EQ(s.events[2].magnitude, 250.0);
    EXPECT_EQ(s.EndInterval(), 10);
}

TEST(FaultSpecTest, RejectsMalformedSpecs)
{
    EXPECT_THROW(ParseFaultSpec(""), std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("bogus@3"), std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("drop"), std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("drop@x"), std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("drop@-1"), std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("drop@3+0"), std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("drop@3:frobs=1"),
                 std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("caploss@3:mag=1.5"),
                 std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("caploss@3:mag=0"),
                 std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("chaos:no-such-scenario"),
                 std::invalid_argument);
    EXPECT_THROW(ParseFaultSpec("drop@3;;drop@4"),
                 std::invalid_argument);
}

TEST(FaultSpecTest, ValidateRejectsOutOfRangeTier)
{
    const FaultSchedule s = ParseFaultSpec("stall@3:tier=6");
    EXPECT_THROW(ValidateFaultSchedule(s, 4), std::invalid_argument);
    EXPECT_NO_THROW(ValidateFaultSchedule(s, 7));
    EXPECT_NO_THROW(
        ValidateFaultSchedule(ParseFaultSpec("stall@3"), 1));
}

TEST(FaultSpecTest, CatalogHasAtLeastSixParseableScenarios)
{
    const std::vector<ChaosScenario>& catalog = ChaosScenarios();
    EXPECT_GE(catalog.size(), 6u);
    for (const ChaosScenario& sc : catalog) {
        SCOPED_TRACE(sc.name);
        EXPECT_FALSE(sc.description.empty());
        const FaultSchedule direct = ParseFaultSpec(sc.spec);
        EXPECT_FALSE(direct.Empty());
        // chaos:NAME indirection resolves to the same schedule.
        const FaultSchedule named =
            ParseFaultSpec("chaos:" + sc.name);
        ASSERT_EQ(named.events.size(), direct.events.size());
        ASSERT_NE(FindChaosScenario(sc.name), nullptr);
        EXPECT_EQ(FindChaosScenario(sc.name)->spec, sc.spec);
    }
    EXPECT_EQ(FindChaosScenario("no-such"), nullptr);
}

bool
SameEvent(const FaultEvent& a, const FaultEvent& b)
{
    return a.kind == b.kind && a.start == b.start &&
           a.duration == b.duration && a.tier == b.tier &&
           a.tier_hi == b.tier_hi && a.jitter == b.jitter &&
           a.magnitude == b.magnitude;
}

void
ExpectSpecError(const std::string& spec, const std::string& needle)
{
    try {
        ParseFaultSpec(spec);
        FAIL() << "expected ParseFaultSpec to reject '" << spec << "'";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
    }
}

TEST(FaultSpecTest, ParsesCorrelatedGroupsAndFlashCrowds)
{
    const FaultSchedule s = ParseFaultSpec(
        "caploss@8+6:tiers=1-3,jitter=2,mag=0.5;flash@10+5:mag=2");
    ASSERT_EQ(s.events.size(), 2u);
    const FaultEvent& grp = s.events[0];
    EXPECT_EQ(grp.tier, 1);
    EXPECT_EQ(grp.tier_hi, 3);
    EXPECT_EQ(grp.jitter, 2);
    // The group staggers: tier 1 active [8, 14), tier 2 [10, 16),
    // tier 3 [12, 18); the event as a whole spans [8, 18).
    EXPECT_EQ(grp.GroupSpan(), 4);
    EXPECT_TRUE(grp.ActiveForTier(1, 8));
    EXPECT_FALSE(grp.ActiveForTier(2, 8));
    EXPECT_TRUE(grp.ActiveForTier(2, 10));
    EXPECT_TRUE(grp.ActiveForTier(3, 17));
    EXPECT_FALSE(grp.ActiveForTier(1, 14));
    EXPECT_FALSE(grp.ActiveForTier(0, 10));
    EXPECT_FALSE(grp.ActiveForTier(4, 10));
    EXPECT_TRUE(grp.ActiveAt(17));
    EXPECT_FALSE(grp.ActiveAt(18));
    EXPECT_EQ(s.events[1].kind, FaultKind::kFlashCrowd);
    EXPECT_DOUBLE_EQ(s.events[1].magnitude, 2.0);
    EXPECT_EQ(s.EndInterval(), 18);

    // A group is validated against its highest member.
    EXPECT_THROW(ValidateFaultSchedule(s, 3), std::invalid_argument);
    EXPECT_NO_THROW(ValidateFaultSchedule(s, 4));

    // Round-trips through the formatter.
    EXPECT_EQ(FormatFaultSpec(s),
              "caploss@8+6:tiers=1-3,jitter=2;flash@10+5");

    ExpectSpecError("stall@3:tiers=3-1",
                    "tiers range must satisfy 0 <= lo <= hi");
    ExpectSpecError("stall@3:tiers=x", "tiers needs a 'lo-hi' range");
    ExpectSpecError("stall@3:jitter=2",
                    "jitter requires a tiers= group");
    ExpectSpecError("stall@3:tiers=1-2,jitter=-1",
                    "jitter must be >= 0");
    ExpectSpecError("flash@3:mag=0", "mag must be > 0");
}

bool
SameSchedule(const FaultSchedule& a, const FaultSchedule& b)
{
    if (a.events.size() != b.events.size())
        return false;
    for (size_t i = 0; i < a.events.size(); ++i)
        if (!SameEvent(a.events[i], b.events[i]))
            return false;
    return true;
}

/** One random valid event in the spec grammar (seeded, no std::rand). */
std::string
RandomEventSpec(Rng& rng)
{
    static const char* kKinds[] = {"stall", "caploss", "spike", "steal",
                                   "drop",  "delay",   "nan",   "flash"};
    const std::string kind = kKinds[rng.UniformInt(8u)];
    std::string spec =
        kind + "@" + std::to_string(rng.UniformInt(int64_t{0}, 40));
    if (rng.Bernoulli(0.6))
        spec += "+" + std::to_string(rng.UniformInt(int64_t{1}, 12));
    std::vector<std::string> params;
    if (rng.Bernoulli(0.5)) {
        if (rng.Bernoulli(0.4)) {
            // Correlated group, optionally jittered (jitter is only
            // legal with a tiers= range).
            const int64_t lo = rng.UniformInt(int64_t{0}, 5);
            const int64_t hi = rng.UniformInt(lo, int64_t{9});
            params.push_back("tiers=" + std::to_string(lo) + "-" +
                             std::to_string(hi));
            if (rng.Bernoulli(0.6))
                params.push_back(
                    "jitter=" +
                    std::to_string(rng.UniformInt(int64_t{0}, 3)));
        } else {
            params.push_back(
                "tier=" +
                std::to_string(rng.UniformInt(int64_t{-1}, 9)));
        }
    }
    if (rng.Bernoulli(0.5)) {
        // Magnitudes valid for every kind: caploss/steal need (0, 1],
        // spike/flash need > 0; awkward decimals exercise the
        // formatter's shortest-round-trip path.
        const double mag = rng.Uniform(0.05, kind == "spike" ? 900.0
                                                             : 1.0);
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", mag);
        params.push_back(std::string("mag=") + buf);
    }
    for (size_t i = 0; i < params.size(); ++i)
        spec += (i == 0 ? ":" : ",") + params[i];
    return spec;
}

TEST(FaultSpecTest, FormatParsesBackIdenticallyOverSeededCorpus)
{
    Rng rng(20260808);
    for (int round = 0; round < 200; ++round) {
        const int events = static_cast<int>(rng.UniformInt(1u, 5u));
        std::string spec;
        for (int e = 0; e < events; ++e)
            spec += (e ? ";" : "") + RandomEventSpec(rng);
        SCOPED_TRACE(spec);
        const FaultSchedule parsed = ParseFaultSpec(spec);
        const std::string formatted = FormatFaultSpec(parsed);
        const FaultSchedule reparsed = ParseFaultSpec(formatted);
        EXPECT_TRUE(SameSchedule(parsed, reparsed))
            << "round-trip changed the schedule: '" << formatted << "'";
        // format is a fixed point: format(parse(format(x))) == format(x)
        EXPECT_EQ(formatted, FormatFaultSpec(reparsed));
    }
}

TEST(FaultSpecTest, FormatEmitsOnlyNonDefaultFields)
{
    EXPECT_EQ(FormatFaultSpec(ParseFaultSpec("drop@10")), "drop@10");
    EXPECT_EQ(FormatFaultSpec(ParseFaultSpec(
                  "stall@5+3:tier=2;caploss@8+2:tier=0,mag=0.5;"
                  "spike@4:mag=250")),
              "stall@5+3:tier=2;caploss@8+2:tier=0;spike@4:mag=250");
    // caploss mag=0.5 and spike default 500 are kind defaults — elided.
    EXPECT_EQ(FormatFaultSpec(ParseFaultSpec("spike@4:mag=500")),
              "spike@4");
    EXPECT_EQ(FormatFaultSpec(FaultSchedule{}), "");
    // Named scenarios format to their expanded, reparseable spec.
    for (const ChaosScenario& sc : ChaosScenarios()) {
        SCOPED_TRACE(sc.name);
        const FaultSchedule direct = ParseFaultSpec(sc.spec);
        EXPECT_TRUE(SameSchedule(
            direct, ParseFaultSpec(FormatFaultSpec(direct))));
    }
}

TEST(FaultSpecTest, MalformedSpecsNameTheOffendingText)
{
    ExpectSpecError("bogus@3", "unknown fault kind 'bogus'");
    ExpectSpecError("drop", "missing '@start'");
    ExpectSpecError("drop@x", "bad integer 'x'");
    ExpectSpecError("drop@-1", "start must be >= 0");
    ExpectSpecError("drop@3+0", "duration must be >= 1");
    ExpectSpecError("drop@3:frobs=1", "unknown parameter 'frobs'");
    ExpectSpecError("drop@3:tier", "needs key=value");
    ExpectSpecError("caploss@3:mag=1.5", "mag must be in (0, 1]");
    ExpectSpecError("spike@3:mag=-2", "mag must be > 0");
    ExpectSpecError("stall@2:tier=9999999999999", "tier out of range");
    ExpectSpecError("chaos:no-such-scenario", "unknown chaos scenario");
    ExpectSpecError("drop@3;;drop@4", "empty event");
    ExpectSpecError("", "empty spec");
}

// ---- cluster fault hooks ---------------------------------------------

TEST(ClusterFaultHookTest, RejectsBadTierIndices)
{
    const Application app = BuildSocialNetwork();
    Cluster cluster(app, ClusterConfig{}, 1);
    const int n = static_cast<int>(app.tiers.size());
    EXPECT_THROW(cluster.SetCapacityFactor(-1, 0.5), std::out_of_range);
    EXPECT_THROW(cluster.SetCapacityFactor(n, 0.5), std::out_of_range);
    EXPECT_THROW(cluster.InjectStall(n, 1.0), std::out_of_range);
    EXPECT_NO_THROW(cluster.SetCapacityFactor(0, 0.5));
    EXPECT_NO_THROW(cluster.InjectStall(0, 1.0));
}

// ---- recovery accounting ---------------------------------------------

TEST(RecoveryTest, CountsIntervalsUntilQosIsMetAgain)
{
    RunResult r;
    auto add = [&](double t, double p99) {
        IntervalRecord rec;
        rec.time_s = t;
        rec.p99_ms = p99;
        r.timeline.push_back(rec);
    };
    add(1, 100), add(2, 900), add(3, 800), add(4, 700), add(5, 100);
    EXPECT_EQ(RecoveryIntervals(r, 2.0, 500.0), 2);  // 3,4 bad; 5 ok
    EXPECT_EQ(RecoveryIntervals(r, 4.0, 500.0), 0);  // 5 immediately ok
    EXPECT_EQ(RecoveryIntervals(r, 0.0, 500.0), 0);  // 1 already ok
    EXPECT_EQ(RecoveryIntervals(r, 2.0, 50.0), -1);  // never recovers
    EXPECT_EQ(RecoveryIntervals(r, 9.0, 500.0), -1); // nothing after
}

// ---- end-to-end chaos runs -------------------------------------------

/** Fixture with one small Sinan model trained on the real app — shared
 *  across every chaos scenario run. */
class ChaosFixture : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        app_ = new Application(BuildSocialNetwork());
        PipelineConfig pcfg;
        pcfg.collect_s = 120.0;
        pcfg.hybrid = DefaultHybridConfig();
        pcfg.hybrid.train.epochs = 2;
        pcfg.hybrid.bt.n_trees = 20;
        trained_ = new TrainedSinan(TrainSinanForApp(*app_, pcfg));
    }

    static void
    TearDownTestSuite()
    {
        delete trained_;
        delete app_;
        trained_ = nullptr;
        app_ = nullptr;
    }

    static RunConfig
    FaultRunConfig(const FaultSchedule& faults)
    {
        RunConfig cfg;
        cfg.duration_s = 26.0;
        cfg.warmup_s = 4.0;
        cfg.faults = faults;
        return cfg;
    }

    /** One managed Sinan run under @p faults at @p threads. */
    static RunResult
    RunScenario(const FaultSchedule& faults, int threads,
                const SchedulerConfig& scfg = SchedulerConfig{})
    {
        SetNumThreads(threads);
        SinanScheduler sched(*trained_->model, scfg);
        ConstantLoad load(100.0);
        const RunResult r =
            RunManaged(*app_, sched, load, FaultRunConfig(faults));
        SetNumThreads(0);
        return r;
    }

    static SchedulerConfig
    UncertaintyOn()
    {
        SchedulerConfig cfg;
        cfg.uncertainty.enabled = true;
        return cfg;
    }

    static Application* app_;
    static TrainedSinan* trained_;
};

Application* ChaosFixture::app_ = nullptr;
TrainedSinan* ChaosFixture::trained_ = nullptr;

TEST_F(ChaosFixture, EveryScenarioRunsByteIdenticalAcrossThreadCounts)
{
    // The acceptance bar: same seed + same spec must serialize to
    // byte-identical decision traces and metrics whether the model
    // evaluates on 1 thread or 8.
    for (const ChaosScenario& sc : ChaosScenarios()) {
        SCOPED_TRACE(sc.name);
        const FaultSchedule faults = ParseFaultSpec(sc.spec);
        RunResult serial, parallel;
        ASSERT_NO_THROW(serial = RunScenario(faults, 1));
        ASSERT_NO_THROW(parallel = RunScenario(faults, 8));
        EXPECT_EQ(DecisionTraceToCsv(serial.decision_trace),
                  DecisionTraceToCsv(parallel.decision_trace));
        EXPECT_EQ(serial.metrics.ToCsv(), parallel.metrics.ToCsv());

        // The manager decided every interval and stayed in bounds.
        ASSERT_EQ(serial.decision_trace.intervals.size(),
                  serial.timeline.size());
        for (const IntervalRecord& rec : serial.timeline) {
            ASSERT_EQ(rec.alloc.size(), app_->tiers.size());
            for (size_t i = 0; i < rec.alloc.size(); ++i) {
                EXPECT_GE(rec.alloc[i], app_->tiers[i].min_cpu - 1e-9);
                EXPECT_LE(rec.alloc[i], app_->tiers[i].max_cpu + 1e-9);
            }
        }
        EXPECT_GT(serial.metrics.Counter("sinan.faults.active_intervals"),
                  0u);
    }
}

TEST_F(ChaosFixture, TelemetryBlackoutEngagesWatchdogAndRecovers)
{
    const FaultSchedule faults =
        ParseFaultSpec("chaos:telemetry-blackout");
    const RunResult r = RunScenario(faults, 1);
    const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
    // 6 dropped intervals: the degraded path engages and, after the
    // silence outlasts the threshold, the watchdog fires.
    EXPECT_GE(tel.degraded, 6u);
    EXPECT_GE(tel.watchdog_upscales, 1u);
    EXPECT_GE(r.metrics.Counter("sinan.scheduler.telemetry.absent"),
              6u);
    // Recovery is measurable and happened within the run.
    const double fault_end_s =
        static_cast<double>(faults.EndInterval());
    EXPECT_GE(RecoveryIntervals(r, fault_end_s, app_->qos_ms), 0);
}

TEST_F(ChaosFixture, NanTelemetryIsClassifiedNotPropagated)
{
    const RunResult r =
        RunScenario(ParseFaultSpec("chaos:telemetry-nan"), 1);
    EXPECT_GE(r.metrics.Counter("sinan.scheduler.telemetry.non_finite"),
              4u);
    // The poisoned observations never reach the QoS accounting or the
    // run log: every recorded p99 is the true (finite) one.
    for (const IntervalRecord& rec : r.timeline)
        EXPECT_TRUE(std::isfinite(rec.p99_ms));
}

TEST_F(ChaosFixture, StaleTelemetryIsDetected)
{
    const RunResult r =
        RunScenario(ParseFaultSpec("chaos:stale-telemetry"), 1);
    EXPECT_GE(r.metrics.Counter("sinan.scheduler.telemetry.stale"), 5u);
}

TEST_F(ChaosFixture, BaselineHoldsThroughTelemetryFaults)
{
    // The rule-based baselines must survive the same telemetry chaos:
    // degraded intervals hold the previous allocation.
    AutoScaler cons = MakeAutoScaleCons();
    ConstantLoad load(100.0);
    RunResult r;
    ASSERT_NO_THROW(
        r = RunManaged(*app_, cons, load,
                       FaultRunConfig(ParseFaultSpec(
                           "drop@6+3;nan@12+2;delay@16+2"))));
    ASSERT_EQ(r.timeline.size(), 26u);
    // Dropped intervals 6..8: allocation frozen at the pre-fault value
    // (the decision for interval k lands in interval k+1's record).
    for (int k = 7; k <= 9; ++k)
        EXPECT_EQ(r.timeline[k].alloc, r.timeline[6].alloc)
            << "interval " << k;
}

TEST_F(ChaosFixture, CorrelatedOutagePoisonsOnlyTargetedTiers)
{
    // correlated-outage NaNs the usage of tiers 1-3 (staggered) while
    // their capacity rolls away; the latency channel stays real, so
    // the observations are partially — not wholly — untrustworthy.
    const RunResult r =
        RunScenario(ParseFaultSpec("chaos:correlated-outage"), 1);
    EXPECT_GE(r.metrics.Counter("sinan.scheduler.telemetry.non_finite"),
              6u);
    for (const IntervalRecord& rec : r.timeline)
        EXPECT_TRUE(std::isfinite(rec.p99_ms));
}

TEST_F(ChaosFixture, FlashCrowdMultipliesTheArrivalRate)
{
    // flash@10+5:mag=2 — the recorded rps during the spike must sit
    // well above the pre-spike level (records land one interval after
    // the arrivals they measure).
    const RunResult r =
        RunScenario(ParseFaultSpec("chaos:flash-crowd"), 1);
    double before = 0.0, during = 0.0;
    int n_before = 0, n_during = 0;
    for (const IntervalRecord& rec : r.timeline) {
        if (rec.time_s > 4.0 && rec.time_s <= 10.0) {
            before += rec.rps;
            ++n_before;
        } else if (rec.time_s > 10.0 && rec.time_s <= 15.0) {
            during += rec.rps;
            ++n_during;
        }
    }
    ASSERT_GT(n_before, 0);
    ASSERT_GT(n_during, 0);
    EXPECT_GT(during / n_during, 1.5 * (before / n_before));
}

TEST_F(ChaosFixture, UncertaintyRunsByteIdenticalAcrossThreadCounts)
{
    // The determinism bar holds with the graded policy enabled, on the
    // scenarios that exercise it hardest.
    for (const char* name :
         {"correlated-outage", "flash-crowd", "stale-telemetry"}) {
        SCOPED_TRACE(name);
        const FaultSchedule faults =
            ParseFaultSpec(std::string("chaos:") + name);
        RunResult serial, parallel;
        ASSERT_NO_THROW(
            serial = RunScenario(faults, 1, UncertaintyOn()));
        ASSERT_NO_THROW(
            parallel = RunScenario(faults, 8, UncertaintyOn()));
        EXPECT_EQ(DecisionTraceToCsv(serial.decision_trace),
                  DecisionTraceToCsv(parallel.decision_trace));
        EXPECT_EQ(serial.metrics.ToCsv(), parallel.metrics.ToCsv());
    }
}

TEST_F(ChaosFixture, UncertaintyTakesGradedPathUnderCorrelatedOutage)
{
    const RunResult r = RunScenario(
        ParseFaultSpec("chaos:correlated-outage"), 1, UncertaintyOn());
    // Partial NaN frames ride the graded path instead of the ladder.
    EXPECT_GE(r.metrics.Counter("sinan.scheduler.uncertain"), 1u);
    // The trace carries the confidence column: graded strictly between
    // 0 and 1 on the uncertain intervals.
    bool saw_graded = false;
    for (const DecisionTraceEntry& e : r.decision_trace.intervals) {
        if (e.kind == DecisionKind::kUncertainModel ||
            e.kind == DecisionKind::kFallback) {
            if (e.confidence > 0.0 && e.confidence < 1.0)
                saw_graded = true;
        }
    }
    EXPECT_TRUE(saw_graded);
}

TEST_F(ChaosFixture, UncertaintyRecoversNoSlowerThanLadder)
{
    // The graded policy keeps using the real latency channel while the
    // ladder freezes on whole-observation NaN — it must not recover
    // more slowly from the correlated outage.
    const FaultSchedule faults =
        ParseFaultSpec("chaos:correlated-outage");
    const RunResult off = RunScenario(faults, 1);
    const RunResult on = RunScenario(faults, 1, UncertaintyOn());
    const double fault_end_s =
        static_cast<double>(faults.EndInterval());
    const int rec_off =
        RecoveryIntervals(off, fault_end_s, app_->qos_ms);
    const int rec_on = RecoveryIntervals(on, fault_end_s, app_->qos_ms);
    const int never = static_cast<int>(off.timeline.size());
    EXPECT_LE(rec_on < 0 ? never : rec_on,
              rec_off < 0 ? never : rec_off);
}

TEST_F(ChaosFixture, CapacityLossDrivesSafetyUpscale)
{
    // An invisible cluster-wide 80% capacity loss must surface as real
    // latency violations and drive the manager to add CPU while the
    // fault is active — the models never see the loss, only its
    // latency consequences.
    const FaultSchedule faults = ParseFaultSpec("caploss@10+6:mag=0.8");
    const RunResult r = RunScenario(faults, 1);
    double before = 0.0, during = 0.0;
    for (const IntervalRecord& rec : r.timeline) {
        if (rec.time_s == 10.0)
            before = rec.total_cpu;
        if (rec.time_s > 10.0 && rec.time_s <= 18.0)
            during = std::max(during, rec.total_cpu);
    }
    ASSERT_GT(before, 0.0);
    EXPECT_GT(during, before);
    const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
    EXPECT_GE(tel.fallbacks, 1u);
}

} // namespace
} // namespace sinan
