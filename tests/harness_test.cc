/**
 * @file
 * Tests for the experiment harness: metric accounting, warm-up
 * exclusion, and managed end-to-end runs with the baselines.
 */
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <stdexcept>

#include "app/apps.h"
#include "baselines/autoscale.h"
#include "common/thread_pool.h"
#include "harness/harness.h"

namespace sinan {
namespace {

/** Manager that never changes the allocation. */
class HoldManager : public ResourceManager {
  public:
    std::vector<double>
    Decide(const IntervalObservation&, const std::vector<double>& alloc,
           const Application&) override
    {
        return alloc;
    }
    const char* Name() const override { return "Hold"; }
};

TEST(RunManaged, ProducesTimelineAndAggregates)
{
    const Application app = BuildSocialNetwork();
    HoldManager hold;
    ConstantLoad load(100.0);
    RunConfig cfg;
    cfg.duration_s = 40.0;
    cfg.warmup_s = 10.0;
    const RunResult r = RunManaged(app, hold, load, cfg);

    EXPECT_EQ(r.timeline.size(), 40u);
    EXPECT_EQ(r.p99_series_ms.size(), 30u); // warmup excluded
    EXPECT_GE(r.qos_meet_prob, 0.0);
    EXPECT_LE(r.qos_meet_prob, 1.0);
    EXPECT_GT(r.mean_cpu, 0.0);
    EXPECT_GE(r.max_cpu, r.mean_cpu - 1e-9);

    // With a hold manager the allocation never moves.
    const double init_total = std::accumulate(
        r.timeline.front().alloc.begin(),
        r.timeline.front().alloc.end(), 0.0);
    EXPECT_NEAR(r.mean_cpu, init_total, 1e-6);
    EXPECT_NEAR(r.max_cpu, init_total, 1e-6);

    // RPS tracks the load.
    double rps_acc = 0.0;
    for (const IntervalRecord& rec : r.timeline)
        rps_acc += rec.rps;
    EXPECT_NEAR(rps_acc / static_cast<double>(r.timeline.size()),
                100.0, 10.0);
}

TEST(RunManaged, BaselinePredictionsAreUnavailable)
{
    const Application app = BuildSocialNetwork();
    HoldManager hold;
    ConstantLoad load(50.0);
    RunConfig cfg;
    cfg.duration_s = 10.0;
    const RunResult r = RunManaged(app, hold, load, cfg);
    for (const IntervalRecord& rec : r.timeline)
        EXPECT_LT(rec.predicted_p99_ms, 0.0);
}

TEST(RunManaged, AutoscalerAdaptsAllocationUpUnderLoad)
{
    Application app = BuildSocialNetwork();
    // Start undersized so the autoscaler must grow allocations.
    for (TierSpec& t : app.tiers)
        t.init_cpu = t.min_cpu + 0.2;
    AutoScaler cons = MakeAutoScaleCons();
    ConstantLoad load(250.0);
    RunConfig cfg;
    cfg.duration_s = 60.0;
    const RunResult r = RunManaged(app, cons, load, cfg);
    const double first = r.timeline.front().total_cpu;
    const double last = r.timeline.back().total_cpu;
    EXPECT_GT(last, first * 1.5);
}

TEST(RunManaged, DeterministicForSameSeed)
{
    const Application app = BuildHotelReservation();
    AutoScaler opt = MakeAutoScaleOpt();
    ConstantLoad load(800.0);
    RunConfig cfg;
    cfg.duration_s = 20.0;
    const RunResult a = RunManaged(app, opt, load, cfg);
    const RunResult b = RunManaged(app, opt, load, cfg);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (size_t i = 0; i < a.timeline.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.timeline[i].p99_ms, b.timeline[i].p99_ms);
        EXPECT_DOUBLE_EQ(a.timeline[i].total_cpu,
                         b.timeline[i].total_cpu);
    }
}

TEST(RunManaged, GceStyleClusterConfigRuns)
{
    const Application app = BuildSocialNetwork();
    HoldManager hold;
    ConstantLoad load(100.0);
    RunConfig cfg;
    cfg.duration_s = 15.0;
    cfg.cluster.speed_factor = 0.85;
    cfg.cluster.replica_scale = 2;
    const RunResult r = RunManaged(app, hold, load, cfg);
    EXPECT_EQ(r.timeline.size(), 15u);
}

TEST(RunSweep, MatchesSerialRunsInJobOrder)
{
    const Application app = BuildSocialNetwork();
    std::vector<SweepJob> jobs;
    for (double users : {60.0, 120.0}) {
        SweepJob job;
        job.make_manager = [] { return std::make_unique<HoldManager>(); };
        job.make_load = [users] {
            return std::make_unique<ConstantLoad>(users);
        };
        job.cfg.duration_s = 15.0;
        job.cfg.warmup_s = 5.0;
        jobs.push_back(std::move(job));
    }

    const int saved = NumThreads();
    SetNumThreads(4);
    const std::vector<RunResult> swept = RunSweep(app, jobs);
    SetNumThreads(saved);

    ASSERT_EQ(swept.size(), jobs.size());
    for (size_t j = 0; j < jobs.size(); ++j) {
        HoldManager hold;
        ConstantLoad load(j == 0 ? 60.0 : 120.0);
        const RunResult serial =
            RunManaged(app, hold, load, jobs[j].cfg);
        ASSERT_EQ(swept[j].timeline.size(), serial.timeline.size());
        for (size_t i = 0; i < serial.timeline.size(); ++i) {
            EXPECT_DOUBLE_EQ(swept[j].timeline[i].p99_ms,
                             serial.timeline[i].p99_ms);
            EXPECT_DOUBLE_EQ(swept[j].timeline[i].total_cpu,
                             serial.timeline[i].total_cpu);
        }
        EXPECT_DOUBLE_EQ(swept[j].mean_cpu, serial.mean_cpu);
        EXPECT_DOUBLE_EQ(swept[j].qos_meet_prob, serial.qos_meet_prob);
    }
}

TEST(RunSweep, RejectsUnsetFactories)
{
    const Application app = BuildSocialNetwork();
    std::vector<SweepJob> jobs(1);
    jobs[0].cfg.duration_s = 5.0;
    EXPECT_THROW(RunSweep(app, jobs), std::invalid_argument);
}

TEST(DefaultHybridConfig, IsSane)
{
    const HybridConfig cfg = DefaultHybridConfig();
    EXPECT_GT(cfg.train.epochs, 0);
    EXPECT_GT(cfg.bt.n_trees, 0);
    EXPECT_TRUE(cfg.train.scaled_loss);
}

} // namespace
} // namespace sinan
