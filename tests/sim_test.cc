/**
 * @file
 * Tests for the discrete-time simulation engine: clock progression,
 * tickable ordering, and interval-boundary semantics.
 */
#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace sinan {
namespace {

TEST(Simulator, RejectsBadConfig)
{
    SimConfig bad;
    bad.tick_s = 0.0;
    EXPECT_THROW(Simulator{bad}, std::invalid_argument);
    bad.tick_s = 0.01;
    bad.interval_s = 0.0;
    EXPECT_THROW(Simulator{bad}, std::invalid_argument);
    bad.tick_s = 1.0;
    bad.interval_s = 0.25; // interval shorter than a tick
    EXPECT_THROW(Simulator{bad}, std::invalid_argument);
}

TEST(Simulator, ClockAdvancesByTicks)
{
    Simulator sim;
    int ticks = 0;
    sim.AddTickable([&](double, double dt) {
        EXPECT_DOUBLE_EQ(dt, 0.01);
        ++ticks;
    });
    sim.RunFor(1.0);
    EXPECT_EQ(ticks, 100);
    EXPECT_NEAR(sim.Now(), 1.0, 1e-9);
}

TEST(Simulator, IntervalListenerFiresPerInterval)
{
    SimConfig cfg;
    cfg.tick_s = 0.1;
    cfg.interval_s = 1.0;
    Simulator sim(cfg);
    std::vector<int64_t> fired;
    sim.AddIntervalListener([&](int64_t idx, double now) {
        fired.push_back(idx);
        EXPECT_NEAR(now, static_cast<double>(idx + 1), 1e-9);
    });
    sim.RunFor(3.0);
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 0);
    EXPECT_EQ(fired[2], 2);
    EXPECT_EQ(sim.IntervalIndex(), 3);
}

TEST(Simulator, TickablesRunInRegistrationOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.AddTickable([&](double, double) { order.push_back(1); });
    sim.AddTickable([&](double, double) { order.push_back(2); });
    sim.RunFor(0.01);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(Simulator, TicksSeeStartOfTickTime)
{
    Simulator sim;
    std::vector<double> times;
    sim.AddTickable([&](double now, double) { times.push_back(now); });
    sim.RunFor(0.03);
    ASSERT_EQ(times.size(), 3u);
    EXPECT_NEAR(times[0], 0.00, 1e-12);
    EXPECT_NEAR(times[1], 0.01, 1e-12);
    EXPECT_NEAR(times[2], 0.02, 1e-12);
}

TEST(Simulator, RunForAccumulatesAcrossCalls)
{
    Simulator sim;
    sim.RunFor(0.5);
    sim.RunFor(0.5);
    EXPECT_NEAR(sim.Now(), 1.0, 1e-9);
    EXPECT_EQ(sim.IntervalIndex(), 1);
}

TEST(Simulator, IntervalFiresAfterAllTickablesOfThatTick)
{
    SimConfig cfg;
    cfg.tick_s = 0.5;
    cfg.interval_s = 1.0;
    Simulator sim(cfg);
    int ticks_seen_at_interval = -1;
    int ticks = 0;
    sim.AddTickable([&](double, double) { ++ticks; });
    sim.AddIntervalListener(
        [&](int64_t, double) { ticks_seen_at_interval = ticks; });
    sim.RunFor(1.0);
    EXPECT_EQ(ticks_seen_at_interval, 2);
}

} // namespace
} // namespace sinan
