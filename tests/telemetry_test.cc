/**
 * @file
 * Tests for the decision-telemetry subsystem: the scheduler's decision
 * trace (candidate outcomes, safety-path events, trust transitions),
 * the `sinan.scheduler.*` metric registry, serialization, and
 * bit-identical 1-vs-N-thread parity of the full telemetry output.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "app/apps.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "harness/harness.h"
#include "harness/telemetry_log.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;
using testutil::SyntheticDataset;

/** Fixture with a tiny hybrid model trained on the synthetic law. */
class TelemetryFixture : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        features_ = new FeatureConfig(SmallFeatures(4, 3));
        const Dataset all = SyntheticDataset(*features_, 500, 171);
        Rng rng(173);
        const auto [train, valid] = all.Split(0.9, rng);
        HybridConfig cfg;
        cfg.train.epochs = 15;
        cfg.bt.n_trees = 60;
        model_ = new HybridModel(*features_, cfg, 177);
        model_->Train(train, valid);

        app_ = new Application();
        app_->name = "toy";
        app_->qos_ms = features_->qos_ms;
        for (int i = 0; i < features_->n_tiers; ++i) {
            TierSpec t;
            t.name = "tier" + std::to_string(i);
            t.min_cpu = 0.2;
            t.max_cpu = 8.0;
            t.init_cpu = 2.0;
            app_->tiers.push_back(t);
        }
        RequestType rt;
        rt.name = "r";
        rt.root.tier = 0;
        app_->request_types.push_back(rt);
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        delete features_;
        delete app_;
        model_ = nullptr;
        features_ = nullptr;
        app_ = nullptr;
    }

    /** Drives warm-up intervals until the window is one observation
     *  short of ready, so the next Decide() is the first model path. */
    static std::vector<double>
    Warmup(SinanScheduler& sched, std::vector<double> alloc,
           double p99 = 100.0)
    {
        for (int t = 0; t + 1 < features_->history; ++t) {
            alloc = sched.Decide(
                MakeObs(*features_, t, 100, alloc[0], 0.5, p99), alloc,
                *app_);
        }
        return alloc;
    }

    static FeatureConfig* features_;
    static HybridModel* model_;
    static Application* app_;
};

FeatureConfig* TelemetryFixture::features_ = nullptr;
HybridModel* TelemetryFixture::model_ = nullptr;
Application* TelemetryFixture::app_ = nullptr;

TEST_F(TelemetryFixture, WarmupIntervalsAreTraced)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);

    const std::vector<double> alloc(app_->tiers.size(), 2.0);
    sched.Decide(MakeObs(*features_, 0, 100, 2.0, 0.2, 100), alloc,
                 *app_);
    ASSERT_EQ(trace.intervals.size(), 1u);
    EXPECT_EQ(trace.intervals[0].kind, DecisionKind::kWarmup);
    EXPECT_TRUE(trace.intervals[0].candidates.empty());
    EXPECT_EQ(metrics.Counter("sinan.scheduler.warmup"), 1u);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.decisions"), 1u);
}

TEST_F(TelemetryFixture, ForcedViolationProducesFallbackEvent)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);

    std::vector<double> alloc(app_->tiers.size(), 2.0);
    alloc = Warmup(sched, alloc);

    // Forced QoS violation: the safety path must fire and be traced.
    alloc = sched.Decide(MakeObs(*features_, features_->history, 100,
                                 alloc[0], 0.95,
                                 app_->qos_ms + 100.0),
                         alloc, *app_);
    const DecisionTraceEntry& e = trace.intervals.back();
    EXPECT_EQ(e.kind, DecisionKind::kFallback);
    EXPECT_TRUE(e.violated);
    EXPECT_TRUE(e.candidates.empty());
    EXPECT_EQ(metrics.Counter("sinan.scheduler.fallbacks"), 1u);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.escalations"), 0u);
}

TEST_F(TelemetryFixture, EscalatedFallbackIsDistinguished)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    SinanScheduler sched(*model_, cfg);
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);

    std::vector<double> alloc(app_->tiers.size(), 2.0);
    alloc = Warmup(sched, alloc);
    int t = features_->history;
    for (int v = 0; v < 2; ++v) {
        alloc = sched.Decide(MakeObs(*features_, t++, 100, alloc[0],
                                     0.95, app_->qos_ms + 200.0),
                             alloc, *app_);
    }
    EXPECT_EQ(trace.intervals.back().kind,
              DecisionKind::kEscalatedFallback);
    EXPECT_TRUE(trace.intervals.back().trust_lost);
    EXPECT_TRUE(trace.intervals.back().trust_reduced);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.escalations"), 1u);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.trust_lost"), 1u);
}

TEST_F(TelemetryFixture, ModelDecisionTracesEveryCandidateWithOutcome)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);

    std::vector<double> alloc(app_->tiers.size(), 4.0);
    alloc = Warmup(sched, alloc);
    sched.Decide(
        MakeObs(*features_, features_->history, 100, alloc[0], 0.4, 90),
        alloc, *app_);

    const DecisionTraceEntry& e = trace.intervals.back();
    ASSERT_TRUE(e.kind == DecisionKind::kModel ||
                e.kind == DecisionKind::kNoFeasibleUpscale);
    ASSERT_FALSE(e.candidates.empty());
    EXPECT_GT(e.margin_ms, 0.0);
    int chosen_count = 0;
    for (const CandidateTrace& ct : e.candidates) {
        // Every model-path candidate carries its predictions.
        EXPECT_EQ(ct.latency_ms.size(), 5u);
        EXPECT_GE(ct.p_violation, 0.0);
        EXPECT_LE(ct.p_violation, 1.0);
        chosen_count += ct.outcome == CandidateOutcome::kChosen;
    }
    if (e.kind == DecisionKind::kModel) {
        EXPECT_EQ(chosen_count, 1);
        ASSERT_GE(e.chosen, 0);
        EXPECT_EQ(e.candidates[e.chosen].outcome,
                  CandidateOutcome::kChosen);
    } else {
        EXPECT_EQ(chosen_count, 0);
        EXPECT_EQ(e.chosen, -1);
    }
    EXPECT_EQ(metrics.Counter("sinan.scheduler.candidates"),
              e.candidates.size());
}

TEST_F(TelemetryFixture, RejectedDownCandidateCarriesHysteresisReason)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    sched.AttachTelemetry(&trace, nullptr);

    std::vector<double> alloc(app_->tiers.size(), 4.0);
    // Warm up at a p99 that meets QoS but is NOT comfortably healthy
    // (above healthy_frac * QoS = 400), so the healthy streak stays 0
    // and hysteresis forbids reclaiming.
    alloc = Warmup(sched, alloc, 450.0);
    sched.Decide(MakeObs(*features_, features_->history, 100, alloc[0],
                         0.4, 450.0),
                 alloc, *app_);

    const DecisionTraceEntry& e = trace.intervals.back();
    EXPECT_FALSE(e.may_reclaim);
    int down_candidates = 0;
    for (const CandidateTrace& ct : e.candidates) {
        if (ct.kind != ActionKind::kScaleDown &&
            ct.kind != ActionKind::kScaleDownBatch)
            continue;
        ++down_candidates;
        EXPECT_EQ(ct.outcome, CandidateOutcome::kRejectedHysteresis);
    }
    EXPECT_GT(down_candidates, 0);
}

TEST_F(TelemetryFixture, PhantomNoOpDownCandidatesAreNotEmitted)
{
    // Regression: when every one of the k least-utilized tiers is above
    // util_cap, the batch-down loop used to emit a candidate identical
    // to Hold but flagged as a down action.
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    sched.AttachTelemetry(&trace, nullptr);

    std::vector<double> alloc(app_->tiers.size(), 2.0);
    alloc = Warmup(sched, alloc);
    // All tiers above util_cap (0.90) but latency healthy: no tier may
    // be scaled down, so no down candidate of any kind may appear.
    sched.Decide(
        MakeObs(*features_, features_->history, 100, alloc[0], 0.95, 90),
        alloc, *app_);

    const DecisionTraceEntry& e = trace.intervals.back();
    ASSERT_FALSE(e.candidates.empty());
    const double hold_cpu =
        std::accumulate(alloc.begin(), alloc.end(), 0.0);
    for (const CandidateTrace& ct : e.candidates) {
        const bool down = ct.kind == ActionKind::kScaleDown ||
                          ct.kind == ActionKind::kScaleDownBatch;
        EXPECT_FALSE(down) << "phantom down candidate with total_cpu "
                           << ct.total_cpu << " (hold " << hold_cpu
                           << ")";
    }
}

TEST_F(TelemetryFixture, TrustRestorationIsTraced)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    cfg.trust_decay_every = 2;
    cfg.trust_restore_healthy = 4;
    SinanScheduler sched(*model_, cfg);
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);

    std::vector<double> alloc(app_->tiers.size(), 2.0);
    alloc = Warmup(sched, alloc);
    int t = features_->history;
    for (int v = 0; v < 2; ++v) {
        alloc = sched.Decide(MakeObs(*features_, t++, 100, alloc[0],
                                     0.95, app_->qos_ms + 200.0),
                             alloc, *app_);
    }
    ASSERT_TRUE(sched.TrustReduced());
    bool restored_seen = false;
    for (int k = 0; k < cfg.trust_restore_healthy; ++k) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, alloc[0], 0.4, 90), alloc,
            *app_);
        restored_seen |= trace.intervals.back().trust_restored;
    }
    EXPECT_FALSE(sched.TrustReduced());
    EXPECT_TRUE(restored_seen);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.trust_restored"), 1u);
}

TEST_F(TelemetryFixture, TraceSerializesToCsvAndJson)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    sched.AttachTelemetry(&trace, nullptr);

    std::vector<double> alloc(app_->tiers.size(), 2.0);
    alloc = Warmup(sched, alloc);
    alloc = sched.Decide(
        MakeObs(*features_, features_->history, 100, alloc[0], 0.4, 90),
        alloc, *app_);

    const std::string csv = DecisionTraceToCsv(trace);
    EXPECT_NE(csv.find("time_s,interval,decision"), std::string::npos);
    EXPECT_NE(csv.find("warmup"), std::string::npos);
    // One header + one row per warmup interval + one per candidate.
    size_t rows = 0;
    for (char ch : csv)
        rows += ch == '\n';
    EXPECT_EQ(rows, 1u + static_cast<size_t>(features_->history - 1) +
                        trace.intervals.back().candidates.size());

    const std::string json = DecisionTraceToJson(trace);
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"decision\": \"warmup\""), std::string::npos);
    EXPECT_NE(json.find("\"candidates\": ["), std::string::npos);
}

TEST_F(TelemetryFixture, TelemetryBitIdenticalAcrossThreadCounts)
{
    // The same decision sequence driven at 1 and at 8 threads must
    // serialize to byte-identical telemetry (HybridModel::Evaluate is
    // the parallel hot path under the scheduler).
    auto run = [&](int threads) {
        SetNumThreads(threads);
        SinanScheduler sched(*model_, SchedulerConfig{});
        DecisionTrace trace;
        MetricsRegistry metrics;
        sched.AttachTelemetry(&trace, &metrics);
        std::vector<double> alloc(app_->tiers.size(), 4.0);
        Rng rng(191);
        for (int t = 0; t < 20; ++t) {
            const IntervalObservation obs =
                MakeObs(*features_, t, rng.Uniform(50, 400), alloc[0],
                        rng.Uniform(0.2, 0.9), rng.Uniform(50, 600));
            alloc = sched.Decide(obs, alloc, *app_);
        }
        return DecisionTraceToCsv(trace) + "\n===\n" + metrics.ToCsv();
    };
    const std::string serial = run(1);
    const std::string parallel = run(8);
    SetNumThreads(0);
    EXPECT_EQ(serial, parallel);
}

TEST_F(TelemetryFixture, HarnessStampsTimesAndExportsTelemetry)
{
    // End-to-end: a managed run fills RunResult::decision_trace with
    // harness-stamped interval times and a populated registry.
    const Application app = BuildSocialNetwork();
    PipelineConfig pcfg;
    pcfg.collect_s = 120.0;
    pcfg.hybrid = DefaultHybridConfig();
    pcfg.hybrid.train.epochs = 2;
    pcfg.hybrid.bt.n_trees = 20;
    const TrainedSinan trained = TrainSinanForApp(app, pcfg);
    SinanScheduler sched(*trained.model, SchedulerConfig{});
    ConstantLoad load(100.0);
    RunConfig cfg;
    cfg.duration_s = 12.0;
    const RunResult r = RunManaged(app, sched, load, cfg);

    ASSERT_EQ(r.decision_trace.intervals.size(), r.timeline.size());
    for (size_t i = 0; i < r.timeline.size(); ++i) {
        EXPECT_DOUBLE_EQ(r.decision_trace.intervals[i].time_s,
                         r.timeline[i].time_s);
        EXPECT_EQ(r.decision_trace.intervals[i].interval,
                  static_cast<int>(i));
    }
    EXPECT_EQ(r.metrics.Counter("sinan.scheduler.decisions"),
              r.timeline.size());
    const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
    EXPECT_EQ(tel.decisions, r.timeline.size());
    EXPECT_GE(tel.PredictionAccuracy(), 0.0);
    EXPECT_LE(tel.PredictionAccuracy(), 1.0);
}

} // namespace
} // namespace sinan
