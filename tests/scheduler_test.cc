/**
 * @file
 * Tests for Sinan's online scheduler: warm-up behaviour, the safety
 * fallbacks, candidate filtering, victim tracking, bounds, the
 * degraded-telemetry paths, and exception safety.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "app/apps.h"
#include "common/check.h"
#include "core/scheduler.h"
#include "core/telemetry_guard.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;
using testutil::SyntheticDataset;

/** Fixture with a tiny hybrid model trained on the synthetic law. */
class SchedulerFixture : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        features_ = new FeatureConfig(SmallFeatures(4, 3));
        const Dataset all = SyntheticDataset(*features_, 500, 71);
        Rng rng(73);
        const auto [train, valid] = all.Split(0.9, rng);
        HybridConfig cfg;
        cfg.train.epochs = 15;
        cfg.bt.n_trees = 60;
        model_ = new HybridModel(*features_, cfg, 77);
        model_->Train(train, valid);

        app_ = new Application();
        app_->name = "toy";
        app_->qos_ms = features_->qos_ms;
        for (int i = 0; i < features_->n_tiers; ++i) {
            TierSpec t;
            t.name = "tier" + std::to_string(i);
            t.min_cpu = 0.2;
            t.max_cpu = 8.0;
            t.init_cpu = 2.0;
            app_->tiers.push_back(t);
        }
        RequestType rt;
        rt.name = "r";
        rt.root.tier = 0;
        app_->request_types.push_back(rt);
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        delete features_;
        delete app_;
        model_ = nullptr;
        features_ = nullptr;
        app_ = nullptr;
    }

    static FeatureConfig* features_;
    static HybridModel* model_;
    static Application* app_;
};

FeatureConfig* SchedulerFixture::features_ = nullptr;
HybridModel* SchedulerFixture::model_ = nullptr;
Application* SchedulerFixture::app_ = nullptr;

TEST_F(SchedulerFixture, WarmupUsesConservativeUtilizationStepping)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    const std::vector<double> alloc(app_->tiers.size(), 2.0);
    // Window needs `history` observations; until then the scheduler
    // falls back to utilization stepping (no model predictions).
    for (int t = 0; t + 1 < features_->history; ++t) {
        // Low utilization, healthy latency: warmup holds.
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.2, 100);
        EXPECT_EQ(sched.Decide(obs, alloc, *app_), alloc);
        EXPECT_LT(sched.LastPredictedP99(), 0.0);
    }
}

TEST_F(SchedulerFixture, WarmupGrowsStarvedAllocation)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    // Saturated tiers during warmup must be grown immediately, not
    // held until the window fills.
    const IntervalObservation obs =
        MakeObs(*features_, 0, 400, 2.0, 0.95, 450);
    const std::vector<double> next = sched.Decide(obs, alloc, *app_);
    for (size_t i = 0; i < next.size(); ++i)
        EXPECT_GT(next[i], alloc[i]);
}

TEST_F(SchedulerFixture, ObservedViolationTriggersBlanketUpscale)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 100);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    const std::vector<double> before = alloc;
    const IntervalObservation bad = MakeObs(
        *features_, features_->history, 100, 2.0, 0.9,
        app_->qos_ms + 100.0);
    const std::vector<double> after = sched.Decide(bad, before, *app_);
    for (size_t i = 0; i < after.size(); ++i)
        EXPECT_GT(after[i], before[i]);
}

TEST_F(SchedulerFixture, PersistentViolationEscalatesToMax)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history + 3; ++t) {
        const IntervalObservation obs = MakeObs(
            *features_, t, 100, 2.0, 0.95, app_->qos_ms + 200.0);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    for (size_t i = 0; i < alloc.size(); ++i)
        EXPECT_DOUBLE_EQ(alloc[i], app_->tiers[i].max_cpu);
}

TEST_F(SchedulerFixture, PersistentViolationReducesModelTrust)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    // Healthy warmup, then a violation streak: after max_fallback_after
    // consecutive observed violations the safety fallback escalates and
    // the model's trust is reduced.
    for (int t = 0; t < features_->history; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 100);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    EXPECT_FALSE(sched.TrustReduced());
    int t = features_->history;
    // First violation: blanket upscale but no trust change yet.
    alloc = sched.Decide(
        MakeObs(*features_, t++, 100, 2.0, 0.95, app_->qos_ms + 200.0),
        alloc, *app_);
    EXPECT_FALSE(sched.TrustReduced());
    // Second consecutive violation reaches max_fallback_after.
    alloc = sched.Decide(
        MakeObs(*features_, t++, 100, 2.0, 0.95, app_->qos_ms + 200.0),
        alloc, *app_);
    EXPECT_TRUE(sched.TrustReduced());
    // Trust stays reduced through later healthy intervals…
    for (int k = 0; k < 3; ++k) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
        EXPECT_TRUE(sched.TrustReduced());
    }
    // …until Reset().
    sched.Reset();
    EXPECT_FALSE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, TrustRestoredAfterSustainedHealthyStreak)
{
    // Regression: trust_reduced_ used to latch on forever; the paper
    // restores trust as predictions prove out.
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    cfg.trust_decay_every = 2;
    cfg.trust_restore_healthy = 4;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }
    // Violation streak reaching max_fallback_after loses trust...
    int t = features_->history;
    for (int v = 0; v < 2; ++v) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.95,
                    app_->qos_ms + 200.0),
            alloc, *app_);
    }
    ASSERT_TRUE(sched.TrustReduced());
    // ...a short healthy stretch is not enough to restore it...
    for (int k = 0; k < cfg.trust_restore_healthy - 1; ++k) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
        EXPECT_TRUE(sched.TrustReduced());
    }
    // ...but a sustained one is.
    alloc = sched.Decide(
        MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
    EXPECT_FALSE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, MispredictionsDecayDuringHealthyStreak)
{
    // Regression: mispredictions_ only ever grew, so one bad phase
    // early in a long run poisoned the trust budget permanently.
    SchedulerConfig cfg;
    cfg.trust_decay_every = 1;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 4.0);
    for (int t = 0; t + 1 < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 4.0, 0.4, 90), alloc, *app_);
    }
    // First model decision: a prediction is pending.
    alloc = sched.Decide(
        MakeObs(*features_, features_->history, 100, 4.0, 0.4, 90),
        alloc, *app_);
    ASSERT_GT(sched.LastPredictedP99(), 0.0);
    // The model predicted OK but the interval violated: misprediction.
    alloc = sched.Decide(
        MakeObs(*features_, features_->history + 1, 100, 4.0, 0.95,
                app_->qos_ms + 100.0),
        alloc, *app_);
    ASSERT_EQ(sched.Mispredictions(), 1);
    // Comfortably-healthy intervals decay the count back to zero.
    alloc = sched.Decide(
        MakeObs(*features_, features_->history + 2, 100, 4.0, 0.4, 90),
        alloc, *app_);
    EXPECT_EQ(sched.Mispredictions(), 0);
}

TEST_F(SchedulerFixture, BrokenViolationStreakKeepsTrust)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 3;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }
    // Violation streaks of length 2 separated by healthy intervals never
    // reach max_fallback_after = 3, so trust is kept.
    int t = features_->history;
    for (int round = 0; round < 3; ++round) {
        for (int v = 0; v < 2; ++v) {
            alloc = sched.Decide(
                MakeObs(*features_, t++, 100, 2.0, 0.95,
                        app_->qos_ms + 150.0),
                alloc, *app_);
        }
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
    }
    EXPECT_FALSE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, EscalatedFallbackScalesUpEveryTier)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }
    // Drive into the escalated fallback and check the scale-up-all
    // shape: every tier strictly grows (until clamped at max_cpu).
    std::vector<double> before = alloc;
    for (int v = 0; v < 3; ++v) {
        before = alloc;
        alloc = sched.Decide(
            MakeObs(*features_, features_->history + v, 100, 2.0, 0.95,
                    app_->qos_ms + 200.0),
            alloc, *app_);
        for (size_t i = 0; i < alloc.size(); ++i) {
            if (before[i] < app_->tiers[i].max_cpu - 1e-9) {
                EXPECT_GT(alloc[i], before[i]) << "tier " << i;
            }
            EXPECT_LE(alloc[i], app_->tiers[i].max_cpu + 1e-9);
        }
    }
    EXPECT_TRUE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, DecisionsStayWithinSpecBounds)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    Rng rng(79);
    for (int t = 0; t < 30; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, rng.Uniform(50, 400), 2.0,
                    rng.Uniform(0.2, 0.9), rng.Uniform(50, 450));
        alloc = sched.Decide(obs, alloc, *app_);
        for (size_t i = 0; i < alloc.size(); ++i) {
            EXPECT_GE(alloc[i], app_->tiers[i].min_cpu - 1e-9);
            EXPECT_LE(alloc[i], app_->tiers[i].max_cpu + 1e-9);
        }
    }
}

TEST_F(SchedulerFixture, ExposesPredictionsAfterNormalDecision)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 4.0);
    double last = -1.0;
    for (int t = 0; t < features_->history + 2; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 4.0, 0.4, 90);
        alloc = sched.Decide(obs, alloc, *app_);
        last = sched.LastPredictedP99();
    }
    EXPECT_GT(last, 0.0);
    EXPECT_GE(sched.LastViolationProb(), 0.0);
    EXPECT_LE(sched.LastViolationProb(), 1.0);
}

TEST_F(SchedulerFixture, ReclaimsWhenComfortablyMeetingQos)
{
    // Plenty of allocation and low predicted latency: within a few
    // intervals total CPU must come down.
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 6.0);
    const double total_before =
        std::accumulate(alloc.begin(), alloc.end(), 0.0);
    for (int t = 0; t < features_->history + 6; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 6.0, 0.15, 80);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    const double total_after =
        std::accumulate(alloc.begin(), alloc.end(), 0.0);
    EXPECT_LT(total_after, total_before);
}

TEST_F(SchedulerFixture, NeverDownsizesSaturatedTier)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 90);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    // Tier 0 saturated, others idle.
    IntervalObservation obs =
        MakeObs(*features_, features_->history, 100, 2.0, 0.2, 90);
    obs.tiers[0].cpu_used = obs.tiers[0].cpu_limit * 0.99;
    const std::vector<double> before = alloc;
    const std::vector<double> after = sched.Decide(obs, before, *app_);
    EXPECT_GE(after[0], before[0] - 1e-9);
}

TEST_F(SchedulerFixture, ResetClearsState)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history + 2; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 90);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    sched.Reset();
    // After reset the warm-up fallback applies again (holds at low
    // utilization, no model prediction).
    const IntervalObservation obs =
        MakeObs(*features_, 0, 100, 2.0, 0.2, 90);
    const std::vector<double> fresh(app_->tiers.size(), 3.0);
    EXPECT_EQ(sched.Decide(obs, fresh, *app_), fresh);
    EXPECT_EQ(sched.Mispredictions(), 0);
    EXPECT_FALSE(sched.TrustReduced());
}

// ---- graceful degradation --------------------------------------------

/** Blank observation: what the harness hands the manager when the
 *  telemetry pipeline dropped the interval outright. */
IntervalObservation
BlankObs(double time_s)
{
    IntervalObservation obs;
    obs.time_s = time_s;
    return obs;
}

TEST_F(SchedulerFixture, DegradedTelemetryNeverThrowsOrShrinks)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    int t = 0;
    for (; t < features_->history + 2; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }

    // Absent (dropped interval), non-finite, and stale observations
    // must all route through the degraded path without a throw and
    // without reclaiming CPU from any tier.
    IntervalObservation nan_obs =
        MakeObs(*features_, t++, 100, 2.0, 0.5, 100);
    nan_obs.latency_ms.back() =
        std::numeric_limits<double>::quiet_NaN();
    IntervalObservation stale_obs =
        MakeObs(*features_, 0, 100, 2.0, 0.5, 100); // time goes back
    const std::vector<IntervalObservation> degraded = {
        BlankObs(static_cast<double>(t)), nan_obs, stale_obs};

    const size_t traced_before = trace.intervals.size();
    for (const IntervalObservation& obs : degraded) {
        const std::vector<double> before = alloc;
        ASSERT_NO_THROW(alloc = sched.Decide(obs, before, *app_));
        for (size_t i = 0; i < alloc.size(); ++i)
            EXPECT_GE(alloc[i], before[i] - 1e-9) << "tier " << i;
    }
    ASSERT_EQ(trace.intervals.size(), traced_before + degraded.size());
    EXPECT_EQ(trace.intervals[traced_before].telemetry,
              TelemetryHealth::kAbsent);
    EXPECT_EQ(trace.intervals[traced_before + 1].telemetry,
              TelemetryHealth::kNonFinite);
    EXPECT_EQ(trace.intervals[traced_before + 2].telemetry,
              TelemetryHealth::kStale);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.degraded"), 3u);
    EXPECT_EQ(sched.SilentIntervals(), 3);

    // A fresh observation clears the silent counter.
    alloc = sched.Decide(MakeObs(*features_, t + 10, 100, 2.0, 0.5, 100),
                         alloc, *app_);
    EXPECT_EQ(sched.SilentIntervals(), 0);
    sched.AttachTelemetry(nullptr, nullptr);
}

TEST_F(SchedulerFixture, WatchdogUpscalesAfterPersistentSilence)
{
    SchedulerConfig cfg;
    cfg.watchdog_silent_after = 3;
    SinanScheduler sched(*model_, cfg);
    MetricsRegistry metrics;
    sched.AttachTelemetry(nullptr, &metrics);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    int t = 0;
    for (; t < features_->history + 2; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }

    // A blackout: every further interval is a blank observation. Once
    // the silence reaches the watchdog threshold, every tier must grow
    // each interval (until clamped).
    for (int k = 0; k < 5; ++k) {
        const std::vector<double> before = alloc;
        alloc = sched.Decide(BlankObs(static_cast<double>(t++)), before,
                             *app_);
        if (k + 1 >= cfg.watchdog_silent_after) {
            for (size_t i = 0; i < alloc.size(); ++i) {
                if (before[i] < app_->tiers[i].max_cpu - 1e-9) {
                    EXPECT_GT(alloc[i], before[i]) << "tier " << i;
                }
            }
        }
    }
    EXPECT_EQ(metrics.Counter("sinan.scheduler.watchdog"), 3u);
    EXPECT_EQ(sched.SilentIntervals(), 5);
    sched.AttachTelemetry(nullptr, nullptr);
}

TEST_F(SchedulerFixture, DegradedWindowDecisionNeverReclaims)
{
    // With a full window the degraded path consults the model on the
    // last-known-good features — but must reject every down candidate.
    SinanScheduler sched(*model_, SchedulerConfig{});
    DecisionTrace trace;
    sched.AttachTelemetry(&trace, nullptr);
    // Generous allocation and comfortable latency: the fresh path
    // would be tempted to reclaim here.
    std::vector<double> alloc(app_->tiers.size(), 6.0);
    int t = 0;
    for (; t < features_->history + 6; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 6.0, 0.15, 80), alloc, *app_);
    }
    const std::vector<double> before = alloc;
    alloc = sched.Decide(BlankObs(static_cast<double>(t)), before, *app_);
    ASSERT_FALSE(trace.intervals.empty());
    const DecisionTraceEntry& e = trace.intervals.back();
    EXPECT_EQ(e.kind, DecisionKind::kDegradedModel);
    EXPECT_FALSE(e.may_reclaim);
    for (const CandidateTrace& ct : e.candidates) {
        if (ct.kind == ActionKind::kScaleDown ||
            ct.kind == ActionKind::kScaleDownBatch) {
            EXPECT_EQ(ct.outcome,
                      CandidateOutcome::kRejectedDegradedTelemetry);
        }
    }
    for (size_t i = 0; i < alloc.size(); ++i)
        EXPECT_GE(alloc[i], before[i] - 1e-9);
    sched.AttachTelemetry(nullptr, nullptr);
}

TEST_F(SchedulerFixture, DegradedBeforeAnyGoodTelemetryHolds)
{
    // Telemetry broken from the very first interval: nothing to fall
    // back on, so the scheduler holds (and the watchdog eventually
    // takes over).
    SchedulerConfig cfg;
    cfg.watchdog_silent_after = 4;
    SinanScheduler sched(*model_, cfg);
    DecisionTrace trace;
    sched.AttachTelemetry(&trace, nullptr);
    const std::vector<double> alloc(app_->tiers.size(), 2.0);
    std::vector<double> a = alloc;
    for (int k = 0; k < 3; ++k) {
        a = sched.Decide(BlankObs(static_cast<double>(k)), a, *app_);
        EXPECT_EQ(a, alloc);
        EXPECT_EQ(trace.intervals.back().kind,
                  DecisionKind::kDegradedHold);
    }
    a = sched.Decide(BlankObs(3.0), a, *app_);
    EXPECT_EQ(trace.intervals.back().kind,
              DecisionKind::kWatchdogUpscale);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_GT(a[i], alloc[i]);
    sched.AttachTelemetry(nullptr, nullptr);
}

TEST_F(SchedulerFixture, WatchdogFiresExactlyAtConfiguredSilence)
{
    // Pins the off-by-one: with watchdog_silent_after = 3 the blanket
    // upscale fires on the 3rd consecutive blind interval (the silence
    // count includes the interval being decided), not the 4th.
    SchedulerConfig cfg;
    cfg.watchdog_silent_after = 3;
    SinanScheduler sched(*model_, cfg);
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    int t = 0;
    for (; t < features_->history + 2; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }
    alloc = sched.Decide(BlankObs(static_cast<double>(t++)), alloc, *app_);
    EXPECT_EQ(trace.intervals.back().kind, DecisionKind::kDegradedModel);
    alloc = sched.Decide(BlankObs(static_cast<double>(t++)), alloc, *app_);
    EXPECT_EQ(trace.intervals.back().kind, DecisionKind::kDegradedModel);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.watchdog"), 0u);
    alloc = sched.Decide(BlankObs(static_cast<double>(t++)), alloc, *app_);
    EXPECT_EQ(trace.intervals.back().kind,
              DecisionKind::kWatchdogUpscale);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.watchdog"), 1u);
    EXPECT_EQ(sched.SilentIntervals(), 3);
    sched.AttachTelemetry(nullptr, nullptr);
}

// ---- graded telemetry confidence -------------------------------------

TEST(TelemetryGuardTest, ResetClearsLastGoodAndSilentCounter)
{
    const FeatureConfig f = SmallFeatures(3, 2);
    TelemetryGuard guard(3);
    guard.CommitFresh(MakeObs(f, 10.0, 100, 2.0, 0.5, 90));
    guard.CommitDegraded();
    guard.CommitDegraded();
    ASSERT_TRUE(guard.HasLastGood());
    ASSERT_EQ(guard.SilentIntervals(), 2);
    // An observation older than the last good one is stale...
    const IntervalObservation older =
        MakeObs(f, 5.0, 100, 2.0, 0.5, 90);
    ASSERT_EQ(guard.Classify(older), TelemetryHealth::kStale);
    guard.Reset();
    EXPECT_FALSE(guard.HasLastGood());
    EXPECT_EQ(guard.SilentIntervals(), 0);
    // ...but after Reset() the staleness reference is gone too — the
    // same observation classifies fresh, proving last_good_ was
    // cleared along with the counter.
    EXPECT_EQ(guard.Classify(older), TelemetryHealth::kFresh);
}

TEST(TelemetryGuardTest, AssessGradesObservationsPerTier)
{
    const FeatureConfig f = SmallFeatures(4, 2);
    TelemetryGuard guard(4);

    // Fresh: full confidence on every channel.
    IntervalObservation obs = MakeObs(f, 1.0, 100, 2.0, 0.5, 90);
    TelemetryAssessment a = guard.Assess(obs, 0.6);
    EXPECT_EQ(a.health, TelemetryHealth::kFresh);
    EXPECT_TRUE(a.latency_fresh);
    EXPECT_DOUBLE_EQ(a.confidence, 1.0);

    // One poisoned tier: that tier scores 0, the rest (and the real
    // latency channel) keep full confidence — (1 + 3) / 5.
    obs.tiers[1].cpu_used = std::numeric_limits<double>::quiet_NaN();
    a = guard.Assess(obs, 0.6);
    EXPECT_EQ(a.health, TelemetryHealth::kNonFinite);
    ASSERT_EQ(a.tier_confidence.size(), 4u);
    EXPECT_DOUBLE_EQ(a.tier_confidence[0], 1.0);
    EXPECT_DOUBLE_EQ(a.tier_confidence[1], 0.0);
    EXPECT_DOUBLE_EQ(a.tier_confidence[2], 1.0);
    EXPECT_DOUBLE_EQ(a.tier_confidence[3], 1.0);
    EXPECT_TRUE(a.latency_fresh);
    EXPECT_DOUBLE_EQ(a.confidence, 0.8);

    // Poisoned latency drops the QoS channel too: 3 / 5.
    obs.latency_ms.back() = std::numeric_limits<double>::quiet_NaN();
    a = guard.Assess(obs, 0.6);
    EXPECT_FALSE(a.latency_fresh);
    EXPECT_DOUBLE_EQ(a.confidence, 0.6);

    // A non-finite global field invalidates the whole frame.
    IntervalObservation bad_rps = MakeObs(f, 2.0, 100, 2.0, 0.5, 90);
    bad_rps.rps = std::numeric_limits<double>::quiet_NaN();
    a = guard.Assess(bad_rps, 0.6);
    EXPECT_EQ(a.health, TelemetryHealth::kNonFinite);
    EXPECT_DOUBLE_EQ(a.confidence, 0.0);

    // Absent scores 0 across the board.
    IntervalObservation blank;
    blank.time_s = 3.0;
    a = guard.Assess(blank, 0.6);
    EXPECT_EQ(a.health, TelemetryHealth::kAbsent);
    EXPECT_DOUBLE_EQ(a.confidence, 0.0);

    // Staleness decays with the silent run length: decay^(k+1)
    // counting the interval under assessment.
    guard.CommitFresh(MakeObs(f, 10.0, 100, 2.0, 0.5, 90));
    const IntervalObservation stale =
        MakeObs(f, 10.0, 100, 2.0, 0.5, 90);
    EXPECT_DOUBLE_EQ(guard.Assess(stale, 0.5).confidence, 0.5);
    guard.CommitDegraded();
    EXPECT_DOUBLE_EQ(guard.Assess(stale, 0.5).confidence, 0.25);
}

TEST(TelemetryGuardTest, RepairImputesZeroConfidencePieces)
{
    const FeatureConfig f = SmallFeatures(4, 2);
    TelemetryGuard guard(4);
    const IntervalObservation good =
        MakeObs(f, 1.0, 100, 2.0, 0.5, 90);
    guard.CommitFresh(good);

    IntervalObservation obs = MakeObs(f, 2.0, 120, 2.0, 0.6, 95);
    obs.tiers[2].queue_len = std::numeric_limits<double>::quiet_NaN();
    obs.latency_ms[0] = std::numeric_limits<double>::quiet_NaN();
    const TelemetryAssessment a = guard.Assess(obs, 0.6);
    const IntervalObservation rep = guard.Repair(obs, a);

    // The poisoned tier is replaced wholesale from the last good
    // picture; untouched tiers keep this interval's values.
    EXPECT_DOUBLE_EQ(rep.tiers[2].queue_len, good.tiers[2].queue_len);
    EXPECT_DOUBLE_EQ(rep.tiers[2].cpu_used, good.tiers[2].cpu_used);
    EXPECT_DOUBLE_EQ(rep.tiers[0].cpu_used, obs.tiers[0].cpu_used);
    // A non-finite latency vector is replaced by the last good one.
    EXPECT_EQ(rep.latency_ms, good.latency_ms);
    // Repair copies; the input observation is not mutated.
    EXPECT_TRUE(std::isnan(obs.tiers[2].queue_len));

    // Stale frames pass through unchanged (a coherent old picture).
    const IntervalObservation stale =
        MakeObs(f, 0.5, 80, 2.0, 0.4, 85);
    const TelemetryAssessment sa = guard.Assess(stale, 0.6);
    ASSERT_EQ(sa.health, TelemetryHealth::kStale);
    EXPECT_EQ(guard.Repair(stale, sa).latency_ms, stale.latency_ms);
}

TEST_F(SchedulerFixture, UncertaintyFreshPathMatchesBaseline)
{
    // With fresh telemetry the uncertainty-enabled scheduler routes
    // through the exact same fresh path — decisions are identical.
    SchedulerConfig on;
    on.uncertainty.enabled = true;
    SinanScheduler sched_on(*model_, on);
    SinanScheduler sched_off(*model_, SchedulerConfig{});
    std::vector<double> a_on(app_->tiers.size(), 4.0);
    std::vector<double> a_off = a_on;
    Rng rng(101);
    for (int t = 0; t < features_->history + 8; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, rng.Uniform(50, 400), 4.0,
                    rng.Uniform(0.2, 0.9), rng.Uniform(50, 450));
        a_on = sched_on.Decide(obs, a_on, *app_);
        a_off = sched_off.Decide(obs, a_off, *app_);
        ASSERT_EQ(a_on, a_off) << "diverged at interval " << t;
    }
}

TEST_F(SchedulerFixture, PartialNanRoutesThroughUncertainModel)
{
    SchedulerConfig cfg;
    cfg.uncertainty.enabled = true;
    SinanScheduler sched(*model_, cfg);
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    int t = 0;
    for (; t < features_->history + 2; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.4, 90), alloc, *app_);
    }

    // One NaN tier, real latency: confidence (1 + 3) / 5 = 0.8, above
    // the floor — the graded path consults the model on the repaired
    // observation instead of freezing in the binary ladder.
    IntervalObservation obs =
        MakeObs(*features_, t, 100, 2.0, 0.4, 90);
    obs.tiers[1].cpu_used = std::numeric_limits<double>::quiet_NaN();
    const std::vector<double> before = alloc;
    alloc = sched.Decide(obs, before, *app_);

    ASSERT_FALSE(trace.intervals.empty());
    const DecisionTraceEntry& e = trace.intervals.back();
    EXPECT_EQ(e.telemetry, TelemetryHealth::kNonFinite);
    EXPECT_EQ(e.kind, DecisionKind::kUncertainModel);
    EXPECT_DOUBLE_EQ(e.confidence, 0.8);
    ASSERT_EQ(e.tier_confidence.size(), app_->tiers.size());
    EXPECT_DOUBLE_EQ(e.tier_confidence[1], 0.0);
    EXPECT_DOUBLE_EQ(e.uncertainty_margin_ms,
                     cfg.uncertainty.margin_frac * app_->qos_ms * 0.2);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.uncertain"), 1u);
    // The graded path is still a degraded interval for the guard.
    EXPECT_EQ(sched.SilentIntervals(), 1);
    sched.AttachTelemetry(nullptr, nullptr);
}

TEST_F(SchedulerFixture, ZeroConfidenceFallsBackToLadder)
{
    SchedulerConfig cfg;
    cfg.uncertainty.enabled = true;
    SinanScheduler sched(*model_, cfg);
    DecisionTrace trace;
    sched.AttachTelemetry(&trace, nullptr);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    int t = 0;
    for (; t < features_->history + 2; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.4, 90), alloc, *app_);
    }

    // Every channel poisoned: confidence 0, strictly below any
    // positive floor — the binary ladder is the limit case.
    IntervalObservation obs =
        MakeObs(*features_, t, 100, 2.0, 0.4, 90);
    for (TierMetrics& m : obs.tiers)
        m.cpu_used = std::numeric_limits<double>::quiet_NaN();
    obs.latency_ms.back() = std::numeric_limits<double>::quiet_NaN();
    alloc = sched.Decide(obs, alloc, *app_);

    const DecisionTraceEntry& e = trace.intervals.back();
    EXPECT_EQ(e.telemetry, TelemetryHealth::kNonFinite);
    EXPECT_EQ(e.kind, DecisionKind::kDegradedModel);
    EXPECT_DOUBLE_EQ(e.confidence, 0.0);
    sched.AttachTelemetry(nullptr, nullptr);
}

TEST_F(SchedulerFixture, StaleDecaySinksBelowFloorIntoLadder)
{
    // Redelivered telemetry decays geometrically: with decay 0.6 and
    // floor 0.35 the first two stale intervals ride the graded path
    // (0.6, then 0.36) and the third (0.216) drops into the ladder.
    SchedulerConfig cfg;
    cfg.uncertainty.enabled = true;
    cfg.watchdog_silent_after = 5; // keep the watchdog out of the way
    SinanScheduler sched(*model_, cfg);
    DecisionTrace trace;
    sched.AttachTelemetry(&trace, nullptr);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    int t = 0;
    for (; t < features_->history + 2; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.4, 90), alloc, *app_);
    }

    const IntervalObservation stale =
        MakeObs(*features_, 0, 100, 2.0, 0.4, 90); // time goes back
    alloc = sched.Decide(stale, alloc, *app_);
    EXPECT_EQ(trace.intervals.back().kind,
              DecisionKind::kUncertainModel);
    EXPECT_NEAR(trace.intervals.back().confidence, 0.6, 1e-12);
    alloc = sched.Decide(stale, alloc, *app_);
    EXPECT_EQ(trace.intervals.back().kind,
              DecisionKind::kUncertainModel);
    EXPECT_NEAR(trace.intervals.back().confidence, 0.36, 1e-12);
    alloc = sched.Decide(stale, alloc, *app_);
    EXPECT_EQ(trace.intervals.back().kind,
              DecisionKind::kDegradedModel);
    EXPECT_NEAR(trace.intervals.back().confidence, 0.216, 1e-12);
    sched.AttachTelemetry(nullptr, nullptr);
}

// ---- trust lifecycle under alternating phases ------------------------

TEST_F(SchedulerFixture, TrustLifecycleSurvivesDegradedPhases)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    cfg.trust_restore_healthy = 4;
    cfg.watchdog_silent_after = 2;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    int t = 0;
    for (; t < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }

    // Phase 1: persistent violations lose trust via escalation.
    for (int v = 0; v < 2; ++v) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.95,
                    app_->qos_ms + 200.0),
            alloc, *app_);
    }
    ASSERT_TRUE(sched.TrustReduced());

    // Phase 2: telemetry blackout. The trust machinery freezes — the
    // silence is neither healthy evidence nor a new misprediction —
    // and the watchdog runs the allocation.
    const int mispred_before = sched.Mispredictions();
    for (int k = 0; k < 4; ++k) {
        alloc = sched.Decide(BlankObs(static_cast<double>(t++)), alloc,
                             *app_);
        EXPECT_TRUE(sched.TrustReduced());
        EXPECT_EQ(sched.Mispredictions(), mispred_before);
    }
    EXPECT_EQ(sched.SilentIntervals(), 4);

    // Phase 3: telemetry returns healthy. The healthy streak restarts
    // from zero (the outage reset it), so restoration takes the full
    // trust_restore_healthy stretch — not less.
    for (int k = 0; k < cfg.trust_restore_healthy - 1; ++k) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
        EXPECT_TRUE(sched.TrustReduced()) << "healthy interval " << k;
    }
    alloc = sched.Decide(MakeObs(*features_, t++, 100, 2.0, 0.4, 90),
                         alloc, *app_);
    EXPECT_FALSE(sched.TrustReduced());
    EXPECT_EQ(sched.SilentIntervals(), 0);

    // Phase 4: a second violation phase reduces trust again — the
    // lifecycle is repeatable, not one-shot.
    for (int v = 0; v < 2; ++v) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.95,
                    app_->qos_ms + 200.0),
            alloc, *app_);
    }
    EXPECT_TRUE(sched.TrustReduced());
}

// ---- exception safety ------------------------------------------------

/** A trained model whose Evaluate can be armed to throw once — the
 *  only throwing operation on the scheduler's model path. */
class ThrowingModel : public HybridModel {
  public:
    ThrowingModel(const FeatureConfig& f, const HybridModel& trained)
        : HybridModel(f, HybridConfig{}, 1)
    {
        std::stringstream buf;
        trained.Save(buf);
        Load(buf);
    }

    std::vector<Prediction>
    Evaluate(const MetricWindow& window,
             const std::vector<std::vector<double>>& allocations) override
    {
        if (armed_) {
            armed_ = false;
            throw ContractViolation("injected model fault");
        }
        return HybridModel::Evaluate(window, allocations);
    }

    void Arm() { armed_ = true; }

  private:
    bool armed_ = false;
};

TEST_F(SchedulerFixture, ContractViolationMidDecideLeavesStateUnchanged)
{
    ThrowingModel faulty(*features_, *model_);
    SinanScheduler sched(faulty, SchedulerConfig{});
    SinanScheduler ref(*model_, SchedulerConfig{});
    DecisionTrace trace;
    MetricsRegistry metrics;
    sched.AttachTelemetry(&trace, &metrics);

    std::vector<double> alloc(app_->tiers.size(), 4.0);
    std::vector<double> ref_alloc = alloc;
    int t = 0;
    for (; t < features_->history + 2; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 4.0, 0.4, 90);
        alloc = sched.Decide(obs, alloc, *app_);
        ref_alloc = ref.Decide(obs, ref_alloc, *app_);
        ASSERT_EQ(alloc, ref_alloc);
    }

    // Arm the fault: Decide must throw and leave every observable
    // piece of scheduler state untouched (strong guarantee).
    const size_t traced = trace.intervals.size();
    const uint64_t decisions =
        metrics.Counter("sinan.scheduler.decisions");
    const int mispred = sched.Mispredictions();
    const IntervalObservation obs =
        MakeObs(*features_, t, 100, 4.0, 0.4, 90);
    faulty.Arm();
    EXPECT_THROW(sched.Decide(obs, alloc, *app_), ContractViolation);
    EXPECT_EQ(trace.intervals.size(), traced);
    EXPECT_EQ(metrics.Counter("sinan.scheduler.decisions"), decisions);
    EXPECT_EQ(sched.Mispredictions(), mispred);

    // Retrying the same interval (fault cleared) must produce exactly
    // what the never-faulted reference produces — i.e. the throw did
    // not advance the window, the victim list, or the trust state.
    alloc = sched.Decide(obs, alloc, *app_);
    ref_alloc = ref.Decide(obs, ref_alloc, *app_);
    EXPECT_EQ(alloc, ref_alloc);
    for (int k = 0; k < 4; ++k) {
        const IntervalObservation next =
            MakeObs(*features_, ++t, 100, 4.0, 0.4, 90);
        alloc = sched.Decide(next, alloc, *app_);
        ref_alloc = ref.Decide(next, ref_alloc, *app_);
        EXPECT_EQ(alloc, ref_alloc) << "diverged at step " << k;
    }
    sched.AttachTelemetry(nullptr, nullptr);
}

} // namespace
} // namespace sinan
