/**
 * @file
 * Tests for Sinan's online scheduler: warm-up behaviour, the safety
 * fallbacks, candidate filtering, victim tracking, and bounds.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "app/apps.h"
#include "core/scheduler.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;
using testutil::SyntheticDataset;

/** Fixture with a tiny hybrid model trained on the synthetic law. */
class SchedulerFixture : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        features_ = new FeatureConfig(SmallFeatures(4, 3));
        const Dataset all = SyntheticDataset(*features_, 500, 71);
        Rng rng(73);
        const auto [train, valid] = all.Split(0.9, rng);
        HybridConfig cfg;
        cfg.train.epochs = 15;
        cfg.bt.n_trees = 60;
        model_ = new HybridModel(*features_, cfg, 77);
        model_->Train(train, valid);

        app_ = new Application();
        app_->name = "toy";
        app_->qos_ms = features_->qos_ms;
        for (int i = 0; i < features_->n_tiers; ++i) {
            TierSpec t;
            t.name = "tier" + std::to_string(i);
            t.min_cpu = 0.2;
            t.max_cpu = 8.0;
            t.init_cpu = 2.0;
            app_->tiers.push_back(t);
        }
        RequestType rt;
        rt.name = "r";
        rt.root.tier = 0;
        app_->request_types.push_back(rt);
    }

    static void
    TearDownTestSuite()
    {
        delete model_;
        delete features_;
        delete app_;
        model_ = nullptr;
        features_ = nullptr;
        app_ = nullptr;
    }

    static FeatureConfig* features_;
    static HybridModel* model_;
    static Application* app_;
};

FeatureConfig* SchedulerFixture::features_ = nullptr;
HybridModel* SchedulerFixture::model_ = nullptr;
Application* SchedulerFixture::app_ = nullptr;

TEST_F(SchedulerFixture, WarmupUsesConservativeUtilizationStepping)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    const std::vector<double> alloc(app_->tiers.size(), 2.0);
    // Window needs `history` observations; until then the scheduler
    // falls back to utilization stepping (no model predictions).
    for (int t = 0; t + 1 < features_->history; ++t) {
        // Low utilization, healthy latency: warmup holds.
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.2, 100);
        EXPECT_EQ(sched.Decide(obs, alloc, *app_), alloc);
        EXPECT_LT(sched.LastPredictedP99(), 0.0);
    }
}

TEST_F(SchedulerFixture, WarmupGrowsStarvedAllocation)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    // Saturated tiers during warmup must be grown immediately, not
    // held until the window fills.
    const IntervalObservation obs =
        MakeObs(*features_, 0, 400, 2.0, 0.95, 450);
    const std::vector<double> next = sched.Decide(obs, alloc, *app_);
    for (size_t i = 0; i < next.size(); ++i)
        EXPECT_GT(next[i], alloc[i]);
}

TEST_F(SchedulerFixture, ObservedViolationTriggersBlanketUpscale)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 100);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    const std::vector<double> before = alloc;
    const IntervalObservation bad = MakeObs(
        *features_, features_->history, 100, 2.0, 0.9,
        app_->qos_ms + 100.0);
    const std::vector<double> after = sched.Decide(bad, before, *app_);
    for (size_t i = 0; i < after.size(); ++i)
        EXPECT_GT(after[i], before[i]);
}

TEST_F(SchedulerFixture, PersistentViolationEscalatesToMax)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history + 3; ++t) {
        const IntervalObservation obs = MakeObs(
            *features_, t, 100, 2.0, 0.95, app_->qos_ms + 200.0);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    for (size_t i = 0; i < alloc.size(); ++i)
        EXPECT_DOUBLE_EQ(alloc[i], app_->tiers[i].max_cpu);
}

TEST_F(SchedulerFixture, PersistentViolationReducesModelTrust)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    // Healthy warmup, then a violation streak: after max_fallback_after
    // consecutive observed violations the safety fallback escalates and
    // the model's trust is reduced.
    for (int t = 0; t < features_->history; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 100);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    EXPECT_FALSE(sched.TrustReduced());
    int t = features_->history;
    // First violation: blanket upscale but no trust change yet.
    alloc = sched.Decide(
        MakeObs(*features_, t++, 100, 2.0, 0.95, app_->qos_ms + 200.0),
        alloc, *app_);
    EXPECT_FALSE(sched.TrustReduced());
    // Second consecutive violation reaches max_fallback_after.
    alloc = sched.Decide(
        MakeObs(*features_, t++, 100, 2.0, 0.95, app_->qos_ms + 200.0),
        alloc, *app_);
    EXPECT_TRUE(sched.TrustReduced());
    // Trust stays reduced through later healthy intervals…
    for (int k = 0; k < 3; ++k) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
        EXPECT_TRUE(sched.TrustReduced());
    }
    // …until Reset().
    sched.Reset();
    EXPECT_FALSE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, TrustRestoredAfterSustainedHealthyStreak)
{
    // Regression: trust_reduced_ used to latch on forever; the paper
    // restores trust as predictions prove out.
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    cfg.trust_decay_every = 2;
    cfg.trust_restore_healthy = 4;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }
    // Violation streak reaching max_fallback_after loses trust...
    int t = features_->history;
    for (int v = 0; v < 2; ++v) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.95,
                    app_->qos_ms + 200.0),
            alloc, *app_);
    }
    ASSERT_TRUE(sched.TrustReduced());
    // ...a short healthy stretch is not enough to restore it...
    for (int k = 0; k < cfg.trust_restore_healthy - 1; ++k) {
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
        EXPECT_TRUE(sched.TrustReduced());
    }
    // ...but a sustained one is.
    alloc = sched.Decide(
        MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
    EXPECT_FALSE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, MispredictionsDecayDuringHealthyStreak)
{
    // Regression: mispredictions_ only ever grew, so one bad phase
    // early in a long run poisoned the trust budget permanently.
    SchedulerConfig cfg;
    cfg.trust_decay_every = 1;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 4.0);
    for (int t = 0; t + 1 < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 4.0, 0.4, 90), alloc, *app_);
    }
    // First model decision: a prediction is pending.
    alloc = sched.Decide(
        MakeObs(*features_, features_->history, 100, 4.0, 0.4, 90),
        alloc, *app_);
    ASSERT_GT(sched.LastPredictedP99(), 0.0);
    // The model predicted OK but the interval violated: misprediction.
    alloc = sched.Decide(
        MakeObs(*features_, features_->history + 1, 100, 4.0, 0.95,
                app_->qos_ms + 100.0),
        alloc, *app_);
    ASSERT_EQ(sched.Mispredictions(), 1);
    // Comfortably-healthy intervals decay the count back to zero.
    alloc = sched.Decide(
        MakeObs(*features_, features_->history + 2, 100, 4.0, 0.4, 90),
        alloc, *app_);
    EXPECT_EQ(sched.Mispredictions(), 0);
}

TEST_F(SchedulerFixture, BrokenViolationStreakKeepsTrust)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 3;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }
    // Violation streaks of length 2 separated by healthy intervals never
    // reach max_fallback_after = 3, so trust is kept.
    int t = features_->history;
    for (int round = 0; round < 3; ++round) {
        for (int v = 0; v < 2; ++v) {
            alloc = sched.Decide(
                MakeObs(*features_, t++, 100, 2.0, 0.95,
                        app_->qos_ms + 150.0),
                alloc, *app_);
        }
        alloc = sched.Decide(
            MakeObs(*features_, t++, 100, 2.0, 0.4, 90), alloc, *app_);
    }
    EXPECT_FALSE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, EscalatedFallbackScalesUpEveryTier)
{
    SchedulerConfig cfg;
    cfg.max_fallback_after = 2;
    SinanScheduler sched(*model_, cfg);
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        alloc = sched.Decide(
            MakeObs(*features_, t, 100, 2.0, 0.5, 100), alloc, *app_);
    }
    // Drive into the escalated fallback and check the scale-up-all
    // shape: every tier strictly grows (until clamped at max_cpu).
    std::vector<double> before = alloc;
    for (int v = 0; v < 3; ++v) {
        before = alloc;
        alloc = sched.Decide(
            MakeObs(*features_, features_->history + v, 100, 2.0, 0.95,
                    app_->qos_ms + 200.0),
            alloc, *app_);
        for (size_t i = 0; i < alloc.size(); ++i) {
            if (before[i] < app_->tiers[i].max_cpu - 1e-9) {
                EXPECT_GT(alloc[i], before[i]) << "tier " << i;
            }
            EXPECT_LE(alloc[i], app_->tiers[i].max_cpu + 1e-9);
        }
    }
    EXPECT_TRUE(sched.TrustReduced());
}

TEST_F(SchedulerFixture, DecisionsStayWithinSpecBounds)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    Rng rng(79);
    for (int t = 0; t < 30; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, rng.Uniform(50, 400), 2.0,
                    rng.Uniform(0.2, 0.9), rng.Uniform(50, 450));
        alloc = sched.Decide(obs, alloc, *app_);
        for (size_t i = 0; i < alloc.size(); ++i) {
            EXPECT_GE(alloc[i], app_->tiers[i].min_cpu - 1e-9);
            EXPECT_LE(alloc[i], app_->tiers[i].max_cpu + 1e-9);
        }
    }
}

TEST_F(SchedulerFixture, ExposesPredictionsAfterNormalDecision)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 4.0);
    double last = -1.0;
    for (int t = 0; t < features_->history + 2; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 4.0, 0.4, 90);
        alloc = sched.Decide(obs, alloc, *app_);
        last = sched.LastPredictedP99();
    }
    EXPECT_GT(last, 0.0);
    EXPECT_GE(sched.LastViolationProb(), 0.0);
    EXPECT_LE(sched.LastViolationProb(), 1.0);
}

TEST_F(SchedulerFixture, ReclaimsWhenComfortablyMeetingQos)
{
    // Plenty of allocation and low predicted latency: within a few
    // intervals total CPU must come down.
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 6.0);
    const double total_before =
        std::accumulate(alloc.begin(), alloc.end(), 0.0);
    for (int t = 0; t < features_->history + 6; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 6.0, 0.15, 80);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    const double total_after =
        std::accumulate(alloc.begin(), alloc.end(), 0.0);
    EXPECT_LT(total_after, total_before);
}

TEST_F(SchedulerFixture, NeverDownsizesSaturatedTier)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 90);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    // Tier 0 saturated, others idle.
    IntervalObservation obs =
        MakeObs(*features_, features_->history, 100, 2.0, 0.2, 90);
    obs.tiers[0].cpu_used = obs.tiers[0].cpu_limit * 0.99;
    const std::vector<double> before = alloc;
    const std::vector<double> after = sched.Decide(obs, before, *app_);
    EXPECT_GE(after[0], before[0] - 1e-9);
}

TEST_F(SchedulerFixture, ResetClearsState)
{
    SinanScheduler sched(*model_, SchedulerConfig{});
    std::vector<double> alloc(app_->tiers.size(), 2.0);
    for (int t = 0; t < features_->history + 2; ++t) {
        const IntervalObservation obs =
            MakeObs(*features_, t, 100, 2.0, 0.5, 90);
        alloc = sched.Decide(obs, alloc, *app_);
    }
    sched.Reset();
    // After reset the warm-up fallback applies again (holds at low
    // utilization, no model prediction).
    const IntervalObservation obs =
        MakeObs(*features_, 0, 100, 2.0, 0.2, 90);
    const std::vector<double> fresh(app_->tiers.size(), 3.0);
    EXPECT_EQ(sched.Decide(obs, fresh, *app_), fresh);
    EXPECT_EQ(sched.Mispredictions(), 0);
    EXPECT_FALSE(sched.TrustReduced());
}

} // namespace
} // namespace sinan
