/**
 * @file
 * Parity and allocation tests for the single-pass candidate-inference
 * fast path: the cached-trunk Evaluate must be bit-identical to the
 * legacy full-batch reference on trained models (synthetic and the
 * bundled bench_cache models) at every thread count, the AVX2 and
 * scalar microkernels must agree bitwise in every dispatch mode (with
 * SINAN_SIMD=off pinning the scalar path to golden bytes), the im2col
 * conv kernel must match a naive reference convolution bitwise, Clone()'s
 * direct deep copy must agree with a serialization round trip, and the
 * model-owned workspace must make steady-state Evaluate calls
 * tensor-allocation-free.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "app/apps.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "harness/harness.h"
#include "models/hybrid.h"
#include "nn/layers.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;
using testutil::SyntheticDataset;

/** Trains a small hybrid model quickly (enough for parity checks). */
std::unique_ptr<HybridModel>
TrainSmallHybrid(const FeatureConfig& f, uint64_t seed)
{
    const Dataset all = SyntheticDataset(f, 200, seed);
    Rng rng(seed + 1);
    const auto [train, valid] = all.Split(0.9, rng);
    HybridConfig cfg;
    cfg.train.epochs = 3;
    cfg.bt.n_trees = 25;
    auto model = std::make_unique<HybridModel>(f, cfg, seed + 2);
    model->Train(train, valid);
    return model;
}

MetricWindow
MakeWindow(const FeatureConfig& f, double rps, double p99)
{
    MetricWindow w(f);
    for (int t = 0; t < f.history; ++t)
        w.Push(MakeObs(f, t, rps, 2.0, 0.6, p99));
    return w;
}

/** Candidate allocations with per-candidate and per-tier variation. */
std::vector<std::vector<double>>
MakeCandidates(const FeatureConfig& f, int n)
{
    std::vector<std::vector<double>> cands;
    for (int i = 0; i < n; ++i) {
        std::vector<double> a(static_cast<size_t>(f.n_tiers));
        for (int j = 0; j < f.n_tiers; ++j)
            a[static_cast<size_t>(j)] = 0.4 + 0.13 * ((i + j) % 17);
        cands.push_back(std::move(a));
    }
    return cands;
}

void
ExpectPredictionsBitIdentical(const std::vector<Prediction>& a,
                              const std::vector<Prediction>& b,
                              const std::string& what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].latency_ms, b[i].latency_ms)
            << what << " candidate " << i;
        ASSERT_EQ(a[i].p_violation, b[i].p_violation)
            << what << " candidate " << i;
    }
}

/** Restores the entry thread count on scope exit. */
class ThreadGuard {
  public:
    ThreadGuard() : saved_(NumThreads()) {}
    ~ThreadGuard() { SetNumThreads(saved_); }

  private:
    int saved_;
};

TEST(InferenceFastPath, CachedMatchesFullBatchAcrossThreadCounts)
{
    const FeatureConfig f = SmallFeatures();
    const std::unique_ptr<HybridModel> pm = TrainSmallHybrid(f, 101);
    HybridModel& model = *pm;
    const MetricWindow w = MakeWindow(f, 150, 120);
    const auto cands = MakeCandidates(f, 40);

    ThreadGuard guard;
    SetNumThreads(1);
    const std::vector<Prediction> ref = model.EvaluateFullBatch(w, cands);
    for (int threads : {1, 8}) {
        SetNumThreads(threads);
        ExpectPredictionsBitIdentical(
            model.Evaluate(w, cands), ref,
            "cached vs full-batch, threads=" + std::to_string(threads));
        ExpectPredictionsBitIdentical(
            model.EvaluateFullBatch(w, cands), ref,
            "full-batch vs serial, threads=" + std::to_string(threads));
    }
}

/** Loads a bundled bench_cache model exactly like the bench cache-hit
 *  path (same FeatureConfig recipe and hybrid hyper-parameters). */
std::unique_ptr<HybridModel>
LoadBundledModel(const Application& app, const std::string& name)
{
    const std::string path =
        std::string(SINAN_REPO_ROOT) + "/bench_cache/" + name + ".model";
    if (!std::filesystem::exists(path))
        return nullptr;
    const PipelineConfig pcfg; // history / lookahead defaults
    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = app.qos_ms;
    auto model =
        std::make_unique<HybridModel>(f, DefaultHybridConfig(), 1);
    std::ifstream in(path, std::ios::binary);
    model->Load(in);
    return model;
}

void
CheckBundledModelParity(const Application& app, const std::string& name)
{
    std::unique_ptr<HybridModel> model = LoadBundledModel(app, name);
    if (!model)
        GTEST_SKIP() << "bundled model " << name << " not present";
    const FeatureConfig& f = model->Features();
    const MetricWindow w = MakeWindow(f, 200, 0.3 * f.qos_ms);
    const auto cands = MakeCandidates(f, 33);

    ThreadGuard guard;
    SetNumThreads(1);
    const std::vector<Prediction> ref =
        model->EvaluateFullBatch(w, cands);
    for (int threads : {1, 8}) {
        SetNumThreads(threads);
        ExpectPredictionsBitIdentical(
            model->Evaluate(w, cands), ref,
            name + " threads=" + std::to_string(threads));
    }
}

TEST(InferenceFastPath, BundledHotelModelParity)
{
    CheckBundledModelParity(BuildHotelReservation(), "hotel");
}

TEST(InferenceFastPath, BundledSocialModelParity)
{
    CheckBundledModelParity(BuildSocialNetwork(), "social");
}

TEST(InferenceFastPath, WorkspaceReuseAcrossShapeChanges)
{
    // The workspace is grown/shrunk in place across interleaved
    // candidate counts and windows; results must match a fresh clone
    // (whose workspace has never been used) at every step.
    const FeatureConfig f = SmallFeatures();
    const std::unique_ptr<HybridModel> pm = TrainSmallHybrid(f, 211);
    HybridModel& model = *pm;
    const MetricWindow wa = MakeWindow(f, 150, 120);
    const MetricWindow wb = MakeWindow(f, 350, 420);

    const struct {
        const MetricWindow* w;
        int n_cands;
    } steps[] = {{&wa, 8}, {&wa, 3}, {&wb, 20}, {&wa, 8}, {&wb, 1}};
    for (const auto& step : steps) {
        const auto cands = MakeCandidates(f, step.n_cands);
        const std::unique_ptr<HybridModel> fresh = model.Clone();
        ExpectPredictionsBitIdentical(
            model.Evaluate(*step.w, cands),
            fresh->Evaluate(*step.w, cands),
            "reused vs fresh workspace, n=" +
                std::to_string(step.n_cands));
    }
}

TEST(InferenceFastPath, SteadyStateEvaluateAllocatesNoTensors)
{
    const FeatureConfig f = SmallFeatures();
    const std::unique_ptr<HybridModel> pm = TrainSmallHybrid(f, 307);
    HybridModel& model = *pm;
    const MetricWindow w = MakeWindow(f, 150, 120);
    const auto cands = MakeCandidates(f, 16);

    // Warm up: first calls grow the workspace buffers.
    for (int i = 0; i < 3; ++i)
        (void)model.Evaluate(w, cands);

    const uint64_t before = Tensor::AllocationEvents();
    for (int i = 0; i < 10; ++i)
        (void)model.Evaluate(w, cands);
    EXPECT_EQ(Tensor::AllocationEvents() - before, 0u)
        << "steady-state Evaluate acquired a tensor buffer";
}

TEST(InferenceFastPath, CloneDirectCopyMatchesSerializedRoundTrip)
{
    // Clone() is a direct member-wise deep copy; it must agree exactly
    // with the old stringstream Save/Load round trip.
    const FeatureConfig f = SmallFeatures();
    const std::unique_ptr<HybridModel> pm = TrainSmallHybrid(f, 401);
    HybridModel& model = *pm;

    const std::unique_ptr<HybridModel> direct = model.Clone();
    HybridConfig cfg;
    cfg.train.epochs = 3;
    cfg.bt.n_trees = 25;
    HybridModel via_stream(f, cfg, 999);
    std::stringstream ss;
    model.Save(ss);
    via_stream.Load(ss);

    EXPECT_DOUBLE_EQ(direct->ValRmseMs(), model.ValRmseMs());
    EXPECT_DOUBLE_EQ(via_stream.ValRmseMs(), model.ValRmseMs());

    const MetricWindow w = MakeWindow(f, 150, 120);
    const auto cands = MakeCandidates(f, 12);
    const std::vector<Prediction> ref = model.Evaluate(w, cands);
    ExpectPredictionsBitIdentical(direct->Evaluate(w, cands), ref,
                                  "direct clone");
    ExpectPredictionsBitIdentical(via_stream.Evaluate(w, cands), ref,
                                  "serialized round trip");
}

/** The pre-im2col Conv2D forward: direct 7-deep loop with bias-first
 *  accumulation and skipped out-of-bounds taps. */
Tensor
NaiveConvForward(const Tensor& x, const Tensor& w, const Tensor& b,
                 int kernel)
{
    const int batch = x.Dim(0);
    const int in_c = x.Dim(1);
    const int h = x.Dim(2);
    const int wdim = x.Dim(3);
    const int out_c = w.Dim(0);
    const int pad = kernel / 2;
    Tensor y({batch, out_c, h, wdim});
    for (int bi = 0; bi < batch; ++bi) {
        for (int o = 0; o < out_c; ++o) {
            for (int i = 0; i < h; ++i) {
                for (int j = 0; j < wdim; ++j) {
                    float acc = b.Data()[o];
                    for (int c = 0; c < in_c; ++c) {
                        for (int ki = 0; ki < kernel; ++ki) {
                            const int si = i + ki - pad;
                            if (si < 0 || si >= h)
                                continue;
                            for (int kj = 0; kj < kernel; ++kj) {
                                const int sj = j + kj - pad;
                                if (sj < 0 || sj >= wdim)
                                    continue;
                                acc += w.At(o, c, ki, kj) *
                                       x.At(bi, c, si, sj);
                            }
                        }
                    }
                    y.At(bi, o, i, j) = acc;
                }
            }
        }
    }
    return y;
}

/** Restores the entry SIMD dispatch mode on scope exit. */
class SimdModeGuard {
  public:
    SimdModeGuard() : saved_(CurrentSimdMode()) {}
    ~SimdModeGuard() { SetSimdMode(saved_); }

  private:
    SimdMode saved_;
};

TEST(InferenceFastPath, SimdMatchesScalarBitwiseAtEveryThreadCount)
{
    // The AVX2 and scalar microkernels share the ascending-p
    // mul-then-add accumulation contract, so forcing either dispatch
    // mode must not move a single bit of the predictions — at 1 or 8
    // threads. (On hosts without AVX2 both modes resolve to the scalar
    // kernel and this degenerates to the thread-parity check.)
    const FeatureConfig f = SmallFeatures();
    const std::unique_ptr<HybridModel> pm = TrainSmallHybrid(f, 509);
    HybridModel& model = *pm;
    const MetricWindow w = MakeWindow(f, 150, 120);
    const auto cands = MakeCandidates(f, 24);

    ThreadGuard threads_guard;
    SimdModeGuard mode_guard;
    SetNumThreads(1);
    SetSimdMode(SimdMode::kOff);
    const std::vector<Prediction> ref = model.Evaluate(w, cands);
    for (const SimdMode mode : {SimdMode::kOn, SimdMode::kOff}) {
        SetSimdMode(mode);
        for (int threads : {1, 8}) {
            SetNumThreads(threads);
            ExpectPredictionsBitIdentical(
                model.Evaluate(w, cands), ref,
                std::string("kernel ") + ActiveKernelId() +
                    " threads=" + std::to_string(threads));
        }
    }
}

TEST(InferenceFastPath, EvaluateTimedStampsActiveKernelId)
{
    const FeatureConfig f = SmallFeatures();
    const std::unique_ptr<HybridModel> pm = TrainSmallHybrid(f, 521);
    HybridModel& model = *pm;
    const MetricWindow w = MakeWindow(f, 150, 120);
    const auto cands = MakeCandidates(f, 4);

    SimdModeGuard mode_guard;
    for (const SimdMode mode : {SimdMode::kOn, SimdMode::kOff}) {
        SetSimdMode(mode);
        EvalStageTimes stages{};
        (void)model.EvaluateTimed(w, cands, &stages);
        EXPECT_STREQ(stages.kernel_id, ActiveKernelId());
    }
    SetSimdMode(SimdMode::kOff);
    EvalStageTimes stages{};
    (void)model.EvaluateTimed(w, cands, &stages);
    EXPECT_STREQ(stages.kernel_id, "scalar-v1");
}

TEST(InferenceFastPath, EnvOverrideForcesScalarKernelWithGoldenBytes)
{
    // SINAN_SIMD=off in the environment must force the scalar kernel
    // after ReloadSimdModeFromEnv(), and the scalar path must still
    // produce the exact bytes pinned below (a seeded Conv2D + Dense
    // forward). A changed byte here means the scalar kernel's
    // arithmetic changed — which requires a kernel-id version bump,
    // not a silent edit.
    SimdModeGuard mode_guard;
    const char* saved_env = std::getenv("SINAN_SIMD");
    const std::string saved_val = saved_env ? saved_env : "";
    setenv("SINAN_SIMD", "off", 1);
    ReloadSimdModeFromEnv();
    EXPECT_EQ(CurrentSimdMode(), SimdMode::kOff);
    EXPECT_FALSE(SimdActive());
    EXPECT_STREQ(ActiveKernelId(), "scalar-v1");

    Rng rng(77);
    Conv2D conv(2, 3, 3, rng);
    const Tensor x = Tensor::Randn({1, 2, 4, 5}, rng, 0.5f);
    Tensor y = conv.Forward(x);
    Dense dense(60, 4, rng);
    y.ReshapeInPlace({1, 60});
    const Tensor out = dense.Forward(y);

    const uint32_t kGolden[] = {
        0xbf90ae9cu, // -1.13032866
        0xbf882c3eu, // -1.06385016
        0x3f305563u, // 0.688802898
        0xbf3ff61fu, // -0.74984926
    };
    ASSERT_EQ(out.Size(), 4u);
    for (size_t i = 0; i < out.Size(); ++i) {
        uint32_t bits = 0;
        std::memcpy(&bits, out.Data() + i, sizeof(bits));
        EXPECT_EQ(bits, kGolden[i]) << "element " << i;
    }

    if (saved_env)
        setenv("SINAN_SIMD", saved_val.c_str(), 1);
    else
        unsetenv("SINAN_SIMD");
    ReloadSimdModeFromEnv();
}

TEST(InferenceFastPath, Im2colConvMatchesNaiveReferenceBitwise)
{
    // Zero-padding contributions in the im2col formulation add +-0.0f,
    // which leaves every partial sum bitwise unchanged, so the two
    // kernels must agree exactly — not just approximately — under
    // either dispatch mode.
    SimdModeGuard mode_guard;
    Rng rng(17);
    for (const int kernel : {3, 5}) {
        Conv2D conv(4, 6, kernel, rng);
        const Tensor x = Tensor::Randn({3, 4, 7, 6}, rng, 0.5f);
        const std::vector<Param*> params = conv.Params();
        const Tensor ref = NaiveConvForward(x, params[0]->value,
                                            params[1]->value, kernel);
        for (const SimdMode mode : {SimdMode::kOn, SimdMode::kOff}) {
            SetSimdMode(mode);
            const Tensor y = conv.Forward(x);
            ASSERT_EQ(y.Shape(), ref.Shape());
            for (size_t i = 0; i < y.Size(); ++i)
                ASSERT_EQ(y.Data()[i], ref.Data()[i])
                    << "kernel=" << kernel << " mode "
                    << ActiveKernelId() << " element " << i;
        }
    }
}

} // namespace
} // namespace sinan
