/**
 * @file
 * Tests for load shapes and the Poisson open-loop workload generator.
 */
#include <gtest/gtest.h>

#include <limits>

#include "app/apps.h"
#include "workload/workload.h"

namespace sinan {
namespace {

TEST(ConstantLoad, IsConstant)
{
    ConstantLoad load(120.0);
    EXPECT_DOUBLE_EQ(load.UsersAt(0.0), 120.0);
    EXPECT_DOUBLE_EQ(load.UsersAt(1e6), 120.0);
}

TEST(DiurnalLoad, OscillatesBetweenBounds)
{
    DiurnalLoad load(100.0, 300.0, 200.0);
    EXPECT_NEAR(load.UsersAt(0.0), 100.0, 1e-9);    // trough
    EXPECT_NEAR(load.UsersAt(100.0), 300.0, 1e-9);  // peak at half period
    EXPECT_NEAR(load.UsersAt(200.0), 100.0, 1e-9);  // back to trough
    for (double t = 0; t < 400; t += 7) {
        EXPECT_GE(load.UsersAt(t), 100.0 - 1e-9);
        EXPECT_LE(load.UsersAt(t), 300.0 + 1e-9);
    }
}

TEST(DiurnalLoad, RejectsBadArgs)
{
    EXPECT_THROW(DiurnalLoad(1, 2, 0), std::invalid_argument);
    EXPECT_THROW(DiurnalLoad(5, 2, 10), std::invalid_argument);
}

TEST(StepLoad, StepsAtScheduledTimes)
{
    StepLoad load({{0.0, 10.0}, {5.0, 50.0}, {9.0, 20.0}});
    EXPECT_DOUBLE_EQ(load.UsersAt(0.0), 10.0);
    EXPECT_DOUBLE_EQ(load.UsersAt(4.9), 10.0);
    EXPECT_DOUBLE_EQ(load.UsersAt(5.0), 50.0);
    EXPECT_DOUBLE_EQ(load.UsersAt(8.0), 50.0);
    EXPECT_DOUBLE_EQ(load.UsersAt(100.0), 20.0);
}

TEST(StepLoad, RejectsBadSchedules)
{
    EXPECT_THROW(StepLoad({}), std::invalid_argument);
    EXPECT_THROW(StepLoad({{5.0, 1.0}, {2.0, 1.0}}),
                 std::invalid_argument);
}

TEST(FlashCrowdLoad, TrapezoidEnvelopeOverBaseShape)
{
    ConstantLoad base(100.0);
    // 10 s spike starting at t=20: 2 s ramp up, 6 s hold, 2 s ramp down.
    FlashCrowdLoad load(base, {{20.0, 10.0, 3.0}});
    EXPECT_DOUBLE_EQ(load.UsersAt(19.9), 100.0);  // before onset
    EXPECT_DOUBLE_EQ(load.UsersAt(20.0), 100.0);  // ramp starts at x1
    EXPECT_NEAR(load.UsersAt(21.0), 200.0, 1e-9); // halfway up the ramp
    EXPECT_NEAR(load.UsersAt(22.0), 300.0, 1e-9); // hold begins
    EXPECT_NEAR(load.UsersAt(25.0), 300.0, 1e-9); // mid-hold
    EXPECT_NEAR(load.UsersAt(28.0), 300.0, 1e-9); // hold ends
    EXPECT_NEAR(load.UsersAt(29.0), 200.0, 1e-9); // halfway down
    EXPECT_DOUBLE_EQ(load.UsersAt(30.0), 100.0);  // spike over
    // Multiplicative on the base: a varying base scales accordingly.
    StepLoad step({{0.0, 50.0}, {25.0, 80.0}});
    FlashCrowdLoad on_step(step, {{20.0, 10.0, 3.0}});
    EXPECT_NEAR(on_step.UsersAt(24.0), 150.0, 1e-9);
    EXPECT_NEAR(on_step.UsersAt(26.0), 240.0, 1e-9);
}

TEST(FlashCrowdLoad, OverlappingSpikesMultiply)
{
    ConstantLoad base(10.0);
    FlashCrowdLoad load(base,
                        {{0.0, 10.0, 2.0}, {5.0, 20.0, 3.0}});
    // t=9: first spike holding (x=0.9 -> ramp-down env 0.5 gives 1.5x),
    // second holding at 3x.
    EXPECT_NEAR(load.UsersAt(9.0), 10.0 * 1.5 * 3.0, 1e-9);
    // t=12: only the second spike remains, in its hold region.
    EXPECT_NEAR(load.UsersAt(12.0), 30.0, 1e-9);
}

TEST(FlashCrowdLoad, RejectsDegenerateSpikes)
{
    ConstantLoad base(10.0);
    EXPECT_THROW(FlashCrowdLoad(base, {{5.0, 0.0, 2.0}}),
                 std::invalid_argument);
    EXPECT_THROW(FlashCrowdLoad(base, {{5.0, -1.0, 2.0}}),
                 std::invalid_argument);
    EXPECT_THROW(FlashCrowdLoad(base, {{5.0, 4.0, 0.9}}),
                 std::invalid_argument);
}

TEST(WorkloadGenerator, InjectsAtPoissonRate)
{
    const Application app = BuildHotelReservation();
    Cluster cluster(app, ClusterConfig{}, 1);
    ConstantLoad load(200.0);
    WorkloadGenerator gen(cluster, load, 5);
    // 30 simulated seconds at 200 rps -> ~6000 requests.
    for (int i = 0; i < 3000; ++i)
        gen.Tick(i * 0.01, 0.01);
    EXPECT_NEAR(static_cast<double>(gen.Injected()), 6000.0, 300.0);
    EXPECT_EQ(cluster.InFlight(),
              static_cast<int64_t>(gen.Injected()));
}

TEST(WorkloadGenerator, RespectsRequestMix)
{
    Application app = BuildSocialNetwork();
    SetRequestMix(app, {50.0, 50.0, 0.0});
    ClusterConfig cfg;
    cfg.metric_noise = 0.0;
    Cluster cluster(app, cfg, 1);
    ConstantLoad load(500.0);
    WorkloadGenerator gen(cluster, load, 5);
    for (int i = 0; i < 500; ++i) {
        gen.Tick(i * 0.01, 0.01);
        cluster.Tick(i * 0.01, 0.01);
    }
    const IntervalObservation obs = cluster.Harvest(5.0, 5.0);
    // ReadUserTimeline's entry tier userTimeline must see no traffic.
    const int ut = app.TierIndex("userTimeline");
    EXPECT_DOUBLE_EQ(obs.tiers[ut].rx_pps, 0.0);
    // ComposePost path must see traffic.
    const int cp = app.TierIndex("composePost");
    EXPECT_GT(obs.tiers[cp].rx_pps, 0.0);
}

TEST(WorkloadGenerator, MixProportionsApproximatelyRespected)
{
    Application app = BuildSocialNetwork();
    SetRequestMix(app, {25.0, 75.0, 0.0});
    ClusterConfig cfg;
    cfg.metric_noise = 0.0;
    Cluster cluster(app, cfg, 1);
    ConstantLoad load(1000.0);
    WorkloadGenerator gen(cluster, load, 5);
    for (int i = 0; i < 1000; ++i) {
        gen.Tick(i * 0.01, 0.01);
        cluster.Tick(i * 0.01, 0.01);
    }
    const IntervalObservation obs = cluster.Harvest(10.0, 10.0);
    const int cp = app.TierIndex("composePost");
    const int ht = app.TierIndex("homeTimeline");
    const double cp_rate =
        obs.tiers[cp].rx_pps / app.tiers[cp].pkts_per_rpc;
    const double ht_rate =
        obs.tiers[ht].rx_pps / app.tiers[ht].pkts_per_rpc;
    // homeTimeline sees ~3x the arrivals of composePost (75:25),
    // modulo extra rx from child completions (compose has many).
    EXPECT_GT(ht_rate / cp_rate, 1.1);
}

TEST(WorkloadGenerator, RejectsBadRate)
{
    const Application app = BuildHotelReservation();
    Cluster cluster(app, ClusterConfig{}, 1);
    ConstantLoad load(1.0);
    EXPECT_THROW(WorkloadGenerator(cluster, load, 1, 0.0),
                 std::invalid_argument);
}

TEST(WorkloadGenerator, RateMultiplierScalesArrivals)
{
    const Application app = BuildHotelReservation();
    Cluster a(app, ClusterConfig{}, 1);
    Cluster b(app, ClusterConfig{}, 1);
    ConstantLoad load(200.0);
    WorkloadGenerator plain(a, load, 5);
    WorkloadGenerator doubled(b, load, 5);
    doubled.SetRateMultiplier(2.0);
    for (int i = 0; i < 3000; ++i) {
        plain.Tick(i * 0.01, 0.01);
        doubled.Tick(i * 0.01, 0.01);
    }
    const double ratio = static_cast<double>(doubled.Injected()) /
                         static_cast<double>(plain.Injected());
    EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(WorkloadGenerator, RejectsBadRateMultiplier)
{
    const Application app = BuildHotelReservation();
    Cluster cluster(app, ClusterConfig{}, 1);
    ConstantLoad load(1.0);
    WorkloadGenerator gen(cluster, load, 1);
    EXPECT_THROW(gen.SetRateMultiplier(0.0), std::invalid_argument);
    EXPECT_THROW(gen.SetRateMultiplier(-1.0), std::invalid_argument);
    EXPECT_THROW(gen.SetRateMultiplier(
                     std::numeric_limits<double>::quiet_NaN()),
                 std::invalid_argument);
    EXPECT_THROW(gen.SetRateMultiplier(
                     std::numeric_limits<double>::infinity()),
                 std::invalid_argument);
    gen.SetRateMultiplier(1.5); // valid values are accepted
}

TEST(WorkloadGenerator, DeterministicAcrossRunsWithSameSeed)
{
    const Application app = BuildHotelReservation();
    auto run = [&] {
        Cluster cluster(app, ClusterConfig{}, 1);
        ConstantLoad load(100.0);
        WorkloadGenerator gen(cluster, load, 99);
        for (int i = 0; i < 500; ++i)
            gen.Tick(i * 0.01, 0.01);
        return gen.Injected();
    };
    EXPECT_EQ(run(), run());
}


TEST(WorkloadBursts, DisabledByDefault)
{
    const Application app = BuildHotelReservation();
    Cluster a(app, ClusterConfig{}, 1);
    Cluster b(app, ClusterConfig{}, 1);
    ConstantLoad load(100.0);
    WorkloadGenerator plain(a, load, 5);
    WorkloadGenerator with_default(b, load, 5, 1.0, BurstOptions{});
    for (int i = 0; i < 2000; ++i) {
        plain.Tick(i * 0.01, 0.01);
        with_default.Tick(i * 0.01, 0.01);
    }
    EXPECT_EQ(plain.Injected(), with_default.Injected());
}

TEST(WorkloadBursts, RaiseMeanArrivalRate)
{
    const Application app = BuildHotelReservation();
    Cluster a(app, ClusterConfig{}, 1);
    Cluster b(app, ClusterConfig{}, 1);
    ConstantLoad load(200.0);
    BurstOptions bursts;
    bursts.enabled = true;
    bursts.mean_gap_s = 10.0;
    bursts.mean_duration_s = 5.0;
    bursts.mult_min = 2.0;
    bursts.mult_max = 2.0;
    WorkloadGenerator plain(a, load, 5);
    WorkloadGenerator bursty(b, load, 5, 1.0, bursts);
    // 200 simulated seconds.
    for (int i = 0; i < 20000; ++i) {
        plain.Tick(i * 0.01, 0.01);
        bursty.Tick(i * 0.01, 0.01);
    }
    // ~1/3 of the time in a x2 burst -> ~1.3x mean rate.
    EXPECT_GT(static_cast<double>(bursty.Injected()),
              static_cast<double>(plain.Injected()) * 1.15);
    EXPECT_LT(static_cast<double>(bursty.Injected()),
              static_cast<double>(plain.Injected()) * 1.6);
}

TEST(WorkloadBursts, ComposeBiasSkewsMixDuringBursts)
{
    Application app = BuildSocialNetwork();
    ASSERT_EQ(app.burst_bias_type, 0);
    app.burst_bias_extra = 1.0; // every burst arrival becomes compose
    ClusterConfig ccfg;
    ccfg.metric_noise = 0.0;
    Cluster cluster(app, ccfg, 1);
    ConstantLoad load(500.0);
    BurstOptions bursts;
    bursts.enabled = true;
    bursts.mean_gap_s = 0.001; // effectively always bursting
    bursts.mean_duration_s = 1e9;
    bursts.mult_min = 1.0;
    bursts.mult_max = 1.0;
    WorkloadGenerator gen(cluster, load, 5, 1.0, bursts);
    for (int i = 0; i < 500; ++i) {
        gen.Tick(i * 0.01, 0.01);
        cluster.Tick(i * 0.01, 0.01);
    }
    const IntervalObservation obs = cluster.Harvest(5.0, 5.0);
    // With bias 1.0 every burst-time request is ComposePost; only the
    // handful of pre-burst ticks can reach the read path.
    const double home =
        obs.tiers[app.TierIndex("homeTimeline")].rx_pps;
    const double compose =
        obs.tiers[app.TierIndex("composePost")].rx_pps;
    EXPECT_GT(compose, 0.0);
    EXPECT_LT(home, 0.05 * compose);
}

} // namespace
} // namespace sinan
