/**
 * @file
 * Tests for the tensor container and the matmul kernels, including
 * bit-identical serial-vs-parallel parity for the row-blocked kernels.
 */
#include <gtest/gtest.h>

#include <functional>
#include <new>
#include <sstream>

#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "tensor/tensor.h"

namespace sinan {
namespace {

TEST(Tensor, ShapeAndSize)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.Rank(), 3);
    EXPECT_EQ(t.Dim(0), 2);
    EXPECT_EQ(t.Dim(2), 4);
    EXPECT_EQ(t.Size(), 24u);
    EXPECT_THROW(t.Dim(3), std::out_of_range);
    EXPECT_TRUE(Tensor().Empty());
}

TEST(Tensor, IndexedAccessIsRowMajor)
{
    Tensor t({2, 3});
    t.At(1, 2) = 7.0f;
    EXPECT_EQ(t[5], 7.0f);
    Tensor u({2, 2, 2});
    u.At(1, 0, 1) = 3.0f;
    EXPECT_EQ(u[5], 3.0f);
    Tensor v({2, 2, 2, 2});
    v.At(1, 1, 1, 1) = 9.0f;
    EXPECT_EQ(v[15], 9.0f);
}

TEST(Tensor, FromVector)
{
    const Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.Rank(), 1);
    EXPECT_EQ(t.Dim(0), 3);
    EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, ReshapedPreservesDataAndChecksSize)
{
    Tensor t({2, 3});
    for (size_t i = 0; i < t.Size(); ++i)
        t[i] = static_cast<float>(i);
    const Tensor r = t.Reshaped({3, 2});
    EXPECT_EQ(r.At(2, 1), 5.0f);
    EXPECT_THROW(t.Reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, FillScaleAddAxpy)
{
    Tensor a({3});
    a.Fill(2.0f);
    a.Scale(3.0f);
    EXPECT_EQ(a[0], 6.0f);
    Tensor b({3});
    b.Fill(1.0f);
    a.Add(b);
    EXPECT_EQ(a[2], 7.0f);
    a.Axpy(2.0f, b);
    EXPECT_EQ(a[1], 9.0f);
    EXPECT_NEAR(a.Sum(), 27.0, 1e-6);
    Tensor wrong({2});
    EXPECT_THROW(a.Add(wrong), std::invalid_argument);
    EXPECT_THROW(a.Axpy(1.0f, wrong), std::invalid_argument);
}

TEST(Tensor, RandnHasRequestedSpread)
{
    Rng rng(5);
    const Tensor t = Tensor::Randn({10000}, rng, 0.5f);
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < t.Size(); ++i)
        mean += static_cast<double>(t[i]);
    mean /= static_cast<double>(t.Size());
    for (size_t i = 0; i < t.Size(); ++i) {
        const double d = static_cast<double>(t[i]) - mean;
        var += d * d;
    }
    var /= static_cast<double>(t.Size());
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(Tensor, SaveLoadRoundTrip)
{
    Rng rng(9);
    const Tensor t = Tensor::Randn({3, 4}, rng);
    std::stringstream ss;
    t.Save(ss);
    const Tensor u = Tensor::Load(ss);
    ASSERT_EQ(u.Shape(), t.Shape());
    for (size_t i = 0; i < t.Size(); ++i)
        EXPECT_EQ(u[i], t[i]);
}

TEST(Tensor, LoadRejectsCorruptStream)
{
    std::stringstream ss("garbage");
    EXPECT_THROW(Tensor::Load(ss), std::runtime_error);
}

TEST(MatMul, MatchesHandComputedProduct)
{
    // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> AB = [[19,22],[43,50]].
    Tensor a({2, 2}), b({2, 2}), c({2, 2});
    a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
    b[0] = 5; b[1] = 6; b[2] = 7; b[3] = 8;
    MatMul(a, b, c);
    EXPECT_EQ(c.At(0, 0), 19.0f);
    EXPECT_EQ(c.At(0, 1), 22.0f);
    EXPECT_EQ(c.At(1, 0), 43.0f);
    EXPECT_EQ(c.At(1, 1), 50.0f);
    // Accumulate doubles the result.
    MatMul(a, b, c, /*accumulate=*/true);
    EXPECT_EQ(c.At(1, 1), 100.0f);
}

TEST(MatMul, TransposedVariantsAgreeWithPlain)
{
    Rng rng(3);
    const Tensor a = Tensor::Randn({4, 5}, rng);
    const Tensor b = Tensor::Randn({5, 6}, rng);
    Tensor c({4, 6});
    MatMul(a, b, c);

    // MatMulTa(A^T stored, B) == A*B when we pass A transposed.
    Tensor at({5, 4});
    for (int i = 0; i < 4; ++i)
        for (int k = 0; k < 5; ++k)
            at.At(k, i) = a.At(i, k);
    Tensor c2({4, 6});
    MatMulTa(at, b, c2);
    for (size_t i = 0; i < c.Size(); ++i)
        EXPECT_NEAR(c[i], c2[i], 1e-4);

    // MatMulTb(A, B^T stored) == A*B.
    Tensor bt({6, 5});
    for (int k = 0; k < 5; ++k)
        for (int j = 0; j < 6; ++j)
            bt.At(j, k) = b.At(k, j);
    Tensor c3({4, 6});
    MatMulTb(a, bt, c3);
    for (size_t i = 0; i < c.Size(); ++i)
        EXPECT_NEAR(c[i], c3[i], 1e-4);
}

TEST(MatMul, RejectsShapeMismatches)
{
    Tensor a({2, 3}), b({4, 2}), c({2, 2});
    EXPECT_THROW(MatMul(a, b, c), std::invalid_argument);
    Tensor b2({3, 2}), c_bad({3, 2});
    EXPECT_THROW(MatMul(a, b2, c_bad), std::invalid_argument);
    Tensor flat({6});
    EXPECT_THROW(MatMul(flat, b2, c), std::invalid_argument);
}

/** Property: (A*B)*C == A*(B*C) within float tolerance. */
class MatmulAssocTest : public ::testing::TestWithParam<int> {};

TEST_P(MatmulAssocTest, AssociativityHolds)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    const Tensor a = Tensor::Randn({3, 4}, rng);
    const Tensor b = Tensor::Randn({4, 5}, rng);
    const Tensor c = Tensor::Randn({5, 2}, rng);
    Tensor ab({3, 5}), ab_c({3, 2}), bc({4, 2}), a_bc({3, 2});
    MatMul(a, b, ab);
    MatMul(ab, c, ab_c);
    MatMul(b, c, bc);
    MatMul(a, bc, a_bc);
    for (size_t i = 0; i < ab_c.Size(); ++i)
        EXPECT_NEAR(ab_c[i], a_bc[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulAssocTest, ::testing::Range(1, 7));

/** Runs @p kernel at 1 and @p threads threads; results must be
 *  bit-identical (the pool's fixed block structure guarantees the same
 *  float accumulation order regardless of thread count). */
void
ExpectThreadParity(int threads,
                   const std::function<void(Tensor&)>& kernel,
                   std::vector<int> out_shape)
{
    const int saved = NumThreads();
    SetNumThreads(1);
    Tensor serial(out_shape);
    kernel(serial);
    SetNumThreads(threads);
    Tensor parallel(out_shape);
    kernel(parallel);
    SetNumThreads(saved);
    ASSERT_EQ(serial.Size(), parallel.Size());
    for (size_t i = 0; i < serial.Size(); ++i)
        ASSERT_EQ(serial[i], parallel[i]) << "element " << i;
}

TEST(MatMulParity, PlainBitIdenticalAcrossThreadCounts)
{
    Rng rng(21);
    // Odd sizes so row blocks don't divide evenly.
    const Tensor a = Tensor::Randn({67, 33}, rng);
    const Tensor b = Tensor::Randn({33, 41}, rng);
    for (int threads : {2, 4, 8}) {
        ExpectThreadParity(
            threads, [&](Tensor& c) { MatMul(a, b, c); }, {67, 41});
    }
}

TEST(MatMulParity, TransposedAVariantBitIdentical)
{
    Rng rng(22);
    const Tensor a = Tensor::Randn({33, 67}, rng); // stores A^T
    const Tensor b = Tensor::Randn({33, 41}, rng);
    for (int threads : {2, 4}) {
        ExpectThreadParity(
            threads, [&](Tensor& c) { MatMulTa(a, b, c); }, {67, 41});
    }
}

TEST(MatMulParity, TransposedBVariantBitIdentical)
{
    Rng rng(23);
    const Tensor a = Tensor::Randn({67, 33}, rng);
    const Tensor b = Tensor::Randn({41, 33}, rng); // stores B^T
    for (int threads : {2, 4}) {
        ExpectThreadParity(
            threads, [&](Tensor& c) { MatMulTb(a, b, c); }, {67, 41});
    }
}

TEST(MatMulParity, AccumulateModeBitIdentical)
{
    Rng rng(24);
    const Tensor a = Tensor::Randn({50, 20}, rng);
    const Tensor b = Tensor::Randn({20, 30}, rng);
    ExpectThreadParity(
        4,
        [&](Tensor& c) {
            c.Fill(1.5f);
            MatMul(a, b, c, /*accumulate=*/true);
        },
        {50, 30});
}

/** Runs MatMul under forced-SIMD and forced-scalar dispatch; the two
 *  kernels share the ascending-p mul-then-add contract, so the bytes
 *  must match exactly (a no-op comparison on hosts without AVX2,
 *  where both modes resolve to the scalar kernel). */
void
ExpectSimdScalarParity(const Tensor& a, const Tensor& b, int m, int n)
{
    const SimdMode saved = CurrentSimdMode();
    SetSimdMode(SimdMode::kOn);
    Tensor simd({m, n});
    MatMul(a, b, simd);
    SetSimdMode(SimdMode::kOff);
    EXPECT_STREQ(ActiveKernelId(), "scalar-v1");
    Tensor scalar({m, n});
    MatMul(a, b, scalar);
    SetSimdMode(saved);
    ASSERT_EQ(simd.Size(), scalar.Size());
    for (size_t i = 0; i < simd.Size(); ++i)
        ASSERT_EQ(simd[i], scalar[i]) << "element " << i;
}

TEST(MatMulParity, SimdBitIdenticalToScalar)
{
    Rng rng(31);
    // Sizes chosen to exercise every kernel tier: 4-row blocks with
    // 16/8-wide column panels, the 1-row 64-wide panel (m covers a
    // remainder row), and the scalar column tail (n % 8 != 0).
    const struct {
        int m, k, n;
    } shapes[] = {
        {1, 1120, 48},  // the rh_fc dense shape: single row, wide k
        {67, 33, 41},   // odd everything: every tail path
        {4, 16, 64},    // exact 4x16 panels, then exact 1x64
        {5, 7, 3},      // below every vector width
        {8, 54, 140},   // the conv1 im2col shape (oc x ckk x hw)
    };
    for (const auto& s : shapes) {
        SCOPED_TRACE(testing::Message()
                     << s.m << "x" << s.k << "x" << s.n);
        const Tensor a = Tensor::Randn({s.m, s.k}, rng);
        const Tensor b = Tensor::Randn({s.k, s.n}, rng);
        ExpectSimdScalarParity(a, b, s.m, s.n);
    }
}

TEST(MatMulParity, SimdBitIdenticalAcrossThreadCounts)
{
    const SimdMode saved = CurrentSimdMode();
    SetSimdMode(SimdMode::kOn);
    Rng rng(32);
    const Tensor a = Tensor::Randn({67, 33}, rng);
    const Tensor b = Tensor::Randn({33, 41}, rng);
    for (int threads : {2, 8}) {
        ExpectThreadParity(
            threads, [&](Tensor& c) { MatMul(a, b, c); }, {67, 41});
    }
    SetSimdMode(saved);
}

TEST(Tensor, IndexArithmeticSurvivesPastIntMaxBytes)
{
    // 16400 * 32768 = 537,395,200 elements (~2.1 GB): the
    // element-count * sizeof(float) product and the im2col-style
    // row-offset products overflow 32-bit arithmetic, so this pins
    // the size_t/int64_t indexing paths. Skipped when the allocator
    // cannot serve the buffers.
    constexpr int kRows = 16400, kCols = 32768;
    try {
        Tensor t({kRows, kCols});
        ASSERT_EQ(t.Size(),
                  static_cast<size_t>(kRows) * kCols);
        // Touch the far corner through the offset helpers: a 32-bit
        // index product would land somewhere inside the buffer (or
        // crash) instead.
        t.At(kRows - 1, kCols - 1) = 3.5f;
        EXPECT_FLOAT_EQ(t[t.Size() - 1], 3.5f);
        EXPECT_FLOAT_EQ(t.At(kRows - 1, kCols - 1), 3.5f);
        t.At(kRows - 1, 0) = -2.0f;
        EXPECT_FLOAT_EQ(t[t.Size() - static_cast<size_t>(kCols)],
                        -2.0f);
    } catch (const std::bad_alloc&) {
        GTEST_SKIP() << "not enough memory for the 2 GB tensor";
    }
}

} // namespace
} // namespace sinan
