/**
 * @file
 * Argv-level contract of the sinan_sim flag surface: every malformed
 * flag prints usage to stderr and exits 2 (the strict convention from
 * src/cli/sim_cli.h), `--faults list` prints the chaos catalog and
 * exits 0, and well-formed invocations populate SimOptions exactly.
 * Exit behavior is pinned with gtest death tests so a regression to
 * throwing (or to silently misparsing) fails loudly.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "app/apps.h"
#include "cli/sim_cli.h"

namespace sinan {
namespace {

/** Runs ParseSimArgs on "sinan_sim <args...>". */
SimOptions
Parse(std::initializer_list<const char*> args)
{
    std::vector<const char*> argv = {"sinan_sim"};
    argv.insert(argv.end(), args.begin(), args.end());
    return ParseSimArgs(static_cast<int>(argv.size()), argv.data());
}

/** Asserts the invocation exits 2 with @p needle on stderr. */
void
ExpectUsageExit(std::initializer_list<const char*> args,
                const std::string& needle)
{
    SCOPED_TRACE(needle);
    EXPECT_EXIT(Parse(args), ::testing::ExitedWithCode(2), needle);
}

TEST(CliTest, DefaultsWhenNoFlags)
{
    const SimOptions opt = Parse({});
    EXPECT_EQ(opt.app, "social");
    EXPECT_FALSE(opt.app_set);
    EXPECT_EQ(opt.manager, "cons");
    EXPECT_FALSE(opt.manager_set);
    EXPECT_DOUBLE_EQ(opt.users, 200.0);
    EXPECT_FALSE(opt.users_set);
    EXPECT_EQ(opt.fleet, 0);
    EXPECT_FALSE(opt.faults_set);
}

TEST(CliTest, ParsesSingleRunFlagsBothSpellings)
{
    const SimOptions opt =
        Parse({"--app", "hotel", "--manager=sinan", "--users=2500",
               "--duration", "30", "--warmup=5", "--seed", "42",
               "--threads=4", "--faults", "stall@3+2:tier=1",
               "--decision-log", "trace.json"});
    EXPECT_EQ(opt.app, "hotel");
    EXPECT_TRUE(opt.app_set);
    EXPECT_EQ(opt.manager, "sinan");
    EXPECT_DOUBLE_EQ(opt.users, 2500.0);
    EXPECT_DOUBLE_EQ(opt.duration_s, 30.0);
    EXPECT_DOUBLE_EQ(opt.warmup_s, 5.0);
    EXPECT_EQ(opt.seed, 42u);
    EXPECT_EQ(opt.threads, 4);
    EXPECT_TRUE(opt.faults_set);
    ASSERT_EQ(opt.faults.events.size(), 1u);
    EXPECT_EQ(opt.faults.events[0].start, 3);
    EXPECT_EQ(opt.faults.events[0].tier, 1);
    EXPECT_EQ(opt.decision_log_path, "trace.json");
}

TEST(CliTest, ParsesFleetFlagsAndOverrides)
{
    const SimOptions opt =
        Parse({"--fleet", "32", "--manager", "sinan",
               "--fleet-shard", "7:app=hotel,users=2500",
               "--fleet-shard", "12:faults=stall@2+3:tier=1;drop@6",
               "--fleet-log", "fleet.csv", "--fleet-report",
               "fleet.json"});
    EXPECT_EQ(opt.fleet, 32);
    ASSERT_EQ(opt.fleet_shards.size(), 2u);
    EXPECT_EQ(opt.fleet_shards[0].index, 7);
    EXPECT_EQ(opt.fleet_shards[0].app, "hotel");
    EXPECT_DOUBLE_EQ(opt.fleet_shards[0].users, 2500.0);
    EXPECT_EQ(opt.fleet_shards[1].index, 12);
    EXPECT_TRUE(opt.fleet_shards[1].faults_set);
    EXPECT_EQ(opt.fleet_shards[1].faults,
              "stall@2+3:tier=1;drop@6");
    EXPECT_EQ(opt.fleet_log_path, "fleet.csv");
    EXPECT_EQ(opt.fleet_report_path, "fleet.json");

    // The parsed options resolve into a runnable fleet shape.
    const Application hotel = BuildHotelReservation();
    const Application social = BuildSocialNetwork();
    const std::vector<ShardSpec> shards = ResolveFleetShards(
        BuildFleetConfig(opt), FleetApps{&hotel, &social});
    ASSERT_EQ(shards.size(), 32u);
    EXPECT_EQ(shards[7].app, "hotel");
    EXPECT_EQ(shards[12].faults, "stall@2+3:tier=1;drop@6");
}

TEST(CliDeathTest, MalformedFlagsExitTwo)
{
    ExpectUsageExit({"--bogus"}, "unknown flag --bogus");
    ExpectUsageExit({"--users"}, "missing value for --users");
    ExpectUsageExit({"--users", "abc"}, "expects a number");
    ExpectUsageExit({"--users", "12x"}, "expects a number");
    // strtod/strtoull tolerate leading whitespace and '+', and clamp
    // overflow instead of failing; the strict convention rejects all
    // three (a quoted " 5" or a 21-digit seed is a scripting bug).
    ExpectUsageExit({"--users", " 5"}, "expects a number");
    ExpectUsageExit({"--users", "+5"}, "expects a number");
    ExpectUsageExit({"--seed", " 7"}, "expects an unsigned integer");
    ExpectUsageExit({"--seed", "+7"}, "expects an unsigned integer");
    ExpectUsageExit({"--seed", "184467440737095516160"},
                    "expects an unsigned integer");
    ExpectUsageExit({"--epochs", "99999999999"}, "expects an integer");
    ExpectUsageExit({"--seed", "-3"}, "expects");
    ExpectUsageExit({"--threads", "-1"}, "--threads must be >= 0");
    ExpectUsageExit({"--app", "bank"}, "--app must be hotel or social");
    ExpectUsageExit({"--manager", "llm"}, "unknown --manager llm");
    ExpectUsageExit({"--users", "100", "--diurnal", "50:200:600"},
                    "mutually exclusive");
    ExpectUsageExit({"--duration", "0"},
                    "durations and users must be positive");
}

TEST(CliDeathTest, MalformedFaultSpecsExitTwo)
{
    ExpectUsageExit({"--faults", "bogus@3"}, "unknown fault kind");
    ExpectUsageExit({"--faults", "stall"}, "missing '@start'");
    ExpectUsageExit({"--faults", "caploss@2:mag=7"},
                    "mag must be in");
    ExpectUsageExit({"--faults", "chaos:nope"},
                    "unknown chaos scenario");
    // Tier validation happens against the selected app's tier count.
    ExpectUsageExit({"--app", "hotel", "--faults", "stall@1:tier=99"},
                    "targets tier 99");
}

TEST(CliDeathTest, FaultsListPrintsCatalogAndExitsZero)
{
    // The catalog goes to stdout; here we only pin the exit code.
    EXPECT_EXIT(Parse({"--faults", "list"}),
                ::testing::ExitedWithCode(0), "");
}

TEST(CliDeathTest, FleetFlagFamilyExitsTwo)
{
    ExpectUsageExit({"--fleet", "0"}, "--fleet must be >= 1");
    ExpectUsageExit({"--fleet", "two"}, "expects an integer");
    ExpectUsageExit({"--fleet-shard", "0:users=100"},
                    "--fleet-shard requires --fleet");
    ExpectUsageExit({"--fleet-log", "f.csv"},
                    "require --fleet");
    ExpectUsageExit({"--fleet-report", "f.json"},
                    "require --fleet");
    // Overrides are resolved at parse time: shape errors exit 2 here.
    ExpectUsageExit({"--fleet", "4", "--fleet-shard", "9:users=100"},
                    "index 9 outside fleet of 4");
    ExpectUsageExit({"--fleet", "4", "--fleet-shard", "1:users=100",
                     "--fleet-shard", "1:seed=7"},
                    "duplicate --fleet-shard index 1");
    ExpectUsageExit({"--fleet", "4", "--fleet-shard", "1:color=red"},
                    "unknown key 'color'");
    ExpectUsageExit({"--fleet", "4", "--fleet-shard",
                     "1:faults=bogus@3"},
                    "unknown fault kind");
    ExpectUsageExit({"--fleet", "4", "--fleet-shard", "nope"},
                    "ParseShardOverride");
}

TEST(CliDeathTest, SingleRunFlagsRejectedInFleetMode)
{
    ExpectUsageExit({"--fleet", "4", "--diurnal", "50:200:600"},
                    "single-run flag");
    ExpectUsageExit({"--fleet", "4", "--mix", "1,2,1"},
                    "single-run flag");
    ExpectUsageExit({"--fleet", "4", "--log", "run.csv"},
                    "single-run");
    ExpectUsageExit({"--fleet", "4", "--metrics", "m.txt"},
                    "single-run");
    ExpectUsageExit({"--fleet", "4", "--faults", "drop@3"},
                    "use --fleet-shard");
}

TEST(CliTest, ParsesUncertaintyFlag)
{
    // Default: disabled, paper-default knobs.
    const SimOptions def = Parse({});
    EXPECT_FALSE(def.uncertainty_set);
    EXPECT_FALSE(def.uncertainty.enabled);

    // "off" is explicit and keeps the binary ladder.
    const SimOptions off = Parse({"--uncertainty", "off"});
    EXPECT_TRUE(off.uncertainty_set);
    EXPECT_FALSE(off.uncertainty.enabled);

    // Any key subset enables; unspecified knobs keep their defaults.
    const SimOptions sub = Parse({"--uncertainty", "floor=0.5"});
    EXPECT_TRUE(sub.uncertainty.enabled);
    EXPECT_DOUBLE_EQ(sub.uncertainty.floor, 0.5);
    EXPECT_DOUBLE_EQ(sub.uncertainty.margin_frac,
                     UncertaintyConfig{}.margin_frac);
    EXPECT_DOUBLE_EQ(sub.uncertainty.decay,
                     UncertaintyConfig{}.decay);

    const SimOptions full =
        Parse({"--uncertainty=margin=0.2,floor=0.3,decay=0.7"});
    EXPECT_TRUE(full.uncertainty.enabled);
    EXPECT_DOUBLE_EQ(full.uncertainty.margin_frac, 0.2);
    EXPECT_DOUBLE_EQ(full.uncertainty.floor, 0.3);
    EXPECT_DOUBLE_EQ(full.uncertainty.decay, 0.7);

    // Fleet mode forwards the policy to every sinan shard.
    const SimOptions fleet =
        Parse({"--fleet", "4", "--uncertainty", "margin=0.25"});
    const FleetConfig cfg = BuildFleetConfig(fleet);
    EXPECT_TRUE(cfg.scheduler.uncertainty.enabled);
    EXPECT_DOUBLE_EQ(cfg.scheduler.uncertainty.margin_frac, 0.25);
}

TEST(CliDeathTest, MalformedUncertaintyExitsTwo)
{
    ExpectUsageExit({"--uncertainty"},
                    "missing value for --uncertainty");
    ExpectUsageExit({"--uncertainty", ""},
                    "--uncertainty expects");
    ExpectUsageExit({"--uncertainty", "on"},
                    "--uncertainty expects");
    ExpectUsageExit({"--uncertainty", "speed=0.5"},
                    "unknown key 'speed'");
    ExpectUsageExit({"--uncertainty", "margin="},
                    "--uncertainty expects");
    ExpectUsageExit({"--uncertainty", "margin=abc"},
                    "expects a number");
    ExpectUsageExit({"--uncertainty", "margin=+0.5"},
                    "expects a number");
    ExpectUsageExit({"--uncertainty", "margin=1.5"},
                    "margin must be in \\[0, 1\\]");
    ExpectUsageExit({"--uncertainty", "floor=-0.1"},
                    "floor must be in \\[0, 1\\]");
    ExpectUsageExit({"--uncertainty", "decay=2"},
                    "decay must be in \\[0, 1\\]");
    ExpectUsageExit({"--uncertainty", "margin=0.2,,decay=0.5"},
                    "--uncertainty expects");
    ExpectUsageExit({"--uncertainty", "margin=0.2,"},
                    "--uncertainty expects");
}

TEST(CliTest, ChaosCatalogMatchesGoldenListing)
{
    // `--faults list` prints exactly this string; golden-pinning it
    // means a scenario rename, reorder, or spec change shows up as a
    // reviewed diff. Regenerate with SINAN_REGEN_GOLDEN=1.
    const std::string path =
        std::string(SINAN_REPO_ROOT) + "/tests/golden/chaos_catalog.txt";
    const std::string rendered = FormatChaosCatalog();
    if (std::getenv("SINAN_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << rendered;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path
                    << " missing; regenerate with SINAN_REGEN_GOLDEN=1";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(rendered, golden.str())
        << "chaos catalog drifted from the committed golden listing. "
           "If intentional, rerun with SINAN_REGEN_GOLDEN=1 and commit "
           "the diff.";

    // The two PR-9 scenarios must be part of the catalog.
    EXPECT_NE(rendered.find("correlated-outage"), std::string::npos);
    EXPECT_NE(rendered.find("flash-crowd"), std::string::npos);
}

TEST(CliTest, ParsesSimdFlagAndAppliesDispatchMode)
{
    const SimdMode entry = CurrentSimdMode();
    const SimOptions off = Parse({"--simd", "off"});
    EXPECT_EQ(off.simd, SimdMode::kOff);
    EXPECT_EQ(CurrentSimdMode(), SimdMode::kOff);
    EXPECT_STREQ(ActiveKernelId(), "scalar-v1");

    const SimOptions on = Parse({"--simd=on"});
    EXPECT_EQ(on.simd, SimdMode::kOn);
    EXPECT_EQ(CurrentSimdMode(), SimdMode::kOn);

    const SimOptions aut = Parse({"--simd", "auto"});
    EXPECT_EQ(aut.simd, SimdMode::kAuto);
    SetSimdMode(entry);
}

TEST(CliDeathTest, SimdFlagRejectsUnknownMode)
{
    ExpectUsageExit({"--simd", "fast"},
                    "--simd expects on, off, or auto");
    ExpectUsageExit({"--simd", ""},
                    "--simd expects on, off, or auto");
}

} // namespace
} // namespace sinan
