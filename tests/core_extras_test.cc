/**
 * @file
 * Tests for the retraining monitor and the static memory provisioner.
 */
#include <gtest/gtest.h>

#include "core/memory_provisioner.h"
#include "core/retrain_monitor.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;

TEST(RetrainMonitor, RejectsBadConfig)
{
    RetrainMonitorConfig bad;
    bad.window = 0;
    EXPECT_THROW(RetrainMonitor(bad, 10.0), std::invalid_argument);
    EXPECT_THROW(RetrainMonitor(RetrainMonitorConfig{}, 0.0),
                 std::invalid_argument);
}

TEST(RetrainMonitor, NoTriggerWhileAccurate)
{
    RetrainMonitorConfig cfg;
    cfg.min_observations = 10;
    RetrainMonitor mon(cfg, 20.0);
    for (int i = 0; i < 200; ++i)
        EXPECT_FALSE(mon.Observe(100.0 + (i % 3), 100.0));
    EXPECT_LT(mon.RollingRmseMs(), 5.0);
    EXPECT_EQ(mon.TriggerCount(), 0);
}

TEST(RetrainMonitor, TriggersOnDegradedAccuracy)
{
    RetrainMonitorConfig cfg;
    cfg.min_observations = 10;
    cfg.rmse_degradation_factor = 2.0;
    RetrainMonitor mon(cfg, 20.0);
    bool fired = false;
    for (int i = 0; i < 60 && !fired; ++i)
        fired = mon.Observe(100.0, 250.0); // error 150 >> 2*20
    EXPECT_TRUE(fired);
    EXPECT_EQ(mon.TriggerCount(), 1);
}

TEST(RetrainMonitor, CooldownSuppressesRetriggering)
{
    RetrainMonitorConfig cfg;
    cfg.min_observations = 5;
    cfg.cooldown = 50;
    RetrainMonitor mon(cfg, 10.0);
    int fires = 0;
    for (int i = 0; i < 40; ++i)
        fires += mon.Observe(0.0, 500.0);
    EXPECT_EQ(fires, 1); // re-trigger blocked within the cooldown
    for (int i = 0; i < 40; ++i)
        fires += mon.Observe(0.0, 500.0);
    EXPECT_EQ(fires, 2); // fires again once the cooldown elapses
}

TEST(RetrainMonitor, MissingPredictionsDoNotPolluteRmse)
{
    RetrainMonitorConfig cfg;
    cfg.min_observations = 5;
    RetrainMonitor mon(cfg, 10.0);
    for (int i = 0; i < 20; ++i)
        mon.Observe(-1.0, 1000.0); // no prediction made
    EXPECT_DOUBLE_EQ(mon.RollingRmseMs(), 0.0);
    EXPECT_EQ(mon.TriggerCount(), 0);
}

TEST(RetrainMonitor, PeriodicTriggerFires)
{
    RetrainMonitorConfig cfg;
    cfg.periodic_intervals = 30;
    cfg.cooldown = 5;
    RetrainMonitor mon(cfg, 10.0);
    int fires = 0;
    for (int i = 0; i < 95; ++i)
        fires += mon.Observe(100.0, 100.0);
    EXPECT_EQ(fires, 3); // at intervals 30, 60, 90
}

TEST(RetrainMonitor, OnRetrainedResetsWindow)
{
    RetrainMonitorConfig cfg;
    cfg.min_observations = 5;
    RetrainMonitor mon(cfg, 10.0);
    for (int i = 0; i < 10; ++i)
        mon.Observe(0.0, 300.0);
    EXPECT_GT(mon.RollingRmseMs(), 100.0);
    mon.OnRetrained(15.0);
    EXPECT_DOUBLE_EQ(mon.RollingRmseMs(), 0.0);
}

TEST(MemoryProvisioner, RejectsBadConfig)
{
    EXPECT_THROW(MemoryProvisioner(0), std::invalid_argument);
    MemoryProvisionerConfig bad;
    bad.headroom = 0.5;
    EXPECT_THROW(MemoryProvisioner(2, bad), std::invalid_argument);
}

TEST(MemoryProvisioner, TracksPeakAcrossObservations)
{
    const FeatureConfig f = SmallFeatures(3, 3);
    MemoryProvisioner prov(3);
    IntervalObservation low = MakeObs(f, 0, 100, 2.0, 0.4, 100);
    IntervalObservation high = MakeObs(f, 1, 300, 2.0, 0.9, 200);
    high.tiers[1].rss_mb = 400.0;
    high.tiers[1].cache_mb = 100.0;
    prov.Observe(low);
    prov.Observe(high);
    prov.Observe(low);
    const auto res = prov.Reservations();
    ASSERT_EQ(res.size(), 3u);
    EXPECT_NEAR(res[1].peak_mb, 500.0, 1e-9);
    // headroom 1.2 -> 600, rounded up to 64 MB granularity -> 640.
    EXPECT_NEAR(res[1].reserved_mb, 640.0, 1e-9);
    EXPECT_EQ(prov.Observations(), 3);
}

TEST(MemoryProvisioner, ReservationCoversEveryObservation)
{
    const FeatureConfig f = SmallFeatures(4, 3);
    MemoryProvisioner prov(4);
    Rng rng(5);
    std::vector<IntervalObservation> seen;
    for (int i = 0; i < 50; ++i) {
        IntervalObservation obs =
            MakeObs(f, i, rng.Uniform(50, 400), 2.0,
                    rng.Uniform(0.2, 1.0), 100, &rng);
        for (TierMetrics& m : obs.tiers)
            m.rss_mb = rng.Uniform(50, 500);
        prov.Observe(obs);
        seen.push_back(obs);
    }
    const auto res = prov.Reservations();
    for (const IntervalObservation& obs : seen) {
        for (size_t t = 0; t < obs.tiers.size(); ++t) {
            EXPECT_GE(res[t].reserved_mb,
                      obs.tiers[t].rss_mb + obs.tiers[t].cache_mb);
        }
    }
    EXPECT_GT(prov.TotalReservedMb(), 0.0);
}

TEST(MemoryProvisioner, MismatchedTierCountThrows)
{
    const FeatureConfig f = SmallFeatures(3, 3);
    MemoryProvisioner prov(4);
    EXPECT_THROW(prov.Observe(MakeObs(f, 0, 100, 2.0, 0.5, 100)),
                 std::invalid_argument);
}

} // namespace
} // namespace sinan
