/**
 * @file
 * Tests for the NN extras: Adam, Dropout, learning-rate schedules, and
 * SGD gradient clipping.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.h"
#include "nn/dropout.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/lr_schedule.h"
#include "nn/optimizer.h"

namespace sinan {
namespace {

TEST(Adam, RejectsBadHyperparameters)
{
    Rng rng(1);
    Dense d(1, 1, rng);
    EXPECT_THROW(Adam(d.Params(), 0.0), std::invalid_argument);
    EXPECT_THROW(Adam(d.Params(), 0.01, 1.0), std::invalid_argument);
    EXPECT_THROW(Adam(d.Params(), 0.01, 0.9, 1.5),
                 std::invalid_argument);
}

TEST(Adam, LearnsLinearRegression)
{
    Rng rng(3);
    Dense d(1, 1, rng);
    Adam adam(d.Params(), 0.05);
    for (int step = 0; step < 500; ++step) {
        Tensor x({8, 1}), y({8, 1});
        for (int i = 0; i < 8; ++i) {
            const float v = static_cast<float>(rng.Uniform(-1.0, 1.0));
            x.At(i, 0) = v;
            y.At(i, 0) = -1.5f * v + 0.5f;
        }
        const LossResult loss = MseLoss(d.Forward(x), y);
        adam.ZeroGrad();
        d.Backward(loss.grad);
        adam.Step();
    }
    EXPECT_NEAR(d.Params()[0]->value[0], -1.5f, 0.05);
    EXPECT_NEAR(d.Params()[1]->value[0], 0.5f, 0.05);
    EXPECT_EQ(adam.StepCount(), 500);
}

TEST(Adam, StepSizeBoundedByLearningRate)
{
    // Adam's per-step parameter change is bounded (~lr), even for a
    // huge gradient — unlike plain SGD.
    Rng rng(5);
    Dense d(1, 1, rng);
    const float before = d.Params()[0]->value[0];
    Adam adam(d.Params(), 0.01);
    d.Params()[0]->grad[0] = 1e6f;
    adam.Step();
    EXPECT_LT(std::abs(d.Params()[0]->value[0] - before), 0.05f);
}

TEST(SgdClip, LargeGradientIsClipped)
{
    Rng rng(7);
    Dense d(1, 1, rng);
    const float before = d.Params()[0]->value[0];
    Sgd sgd(d.Params(), 0.1, 0.0, 0.0, /*clip_norm=*/1.0);
    d.Params()[0]->grad[0] = 1e6f;
    sgd.Step();
    // Clipped to norm 1 -> step size <= lr * 1.
    EXPECT_LE(std::abs(d.Params()[0]->value[0] - before), 0.11f);
}

TEST(SgdClip, SmallGradientsUnaffected)
{
    Rng rng(7);
    Dense a(1, 1, rng);
    Rng rng2(7);
    Dense b(1, 1, rng2);
    Sgd sa(a.Params(), 0.1, 0.0, 0.0, 0.0);
    Sgd sb(b.Params(), 0.1, 0.0, 0.0, 100.0);
    a.Params()[0]->grad[0] = 0.5f;
    b.Params()[0]->grad[0] = 0.5f;
    sa.Step();
    sb.Step();
    EXPECT_FLOAT_EQ(a.Params()[0]->value[0], b.Params()[0]->value[0]);
}

TEST(Dropout, RejectsBadProbability)
{
    EXPECT_THROW(Dropout(-0.1), std::invalid_argument);
    EXPECT_THROW(Dropout(1.0), std::invalid_argument);
}

TEST(Dropout, InferenceModeIsIdentity)
{
    Dropout drop(0.5, 3);
    drop.SetTraining(false);
    Tensor x({4, 4});
    x.Fill(2.0f);
    const Tensor y = drop.Forward(x);
    for (size_t i = 0; i < y.Size(); ++i)
        EXPECT_FLOAT_EQ(y[i], 2.0f);
}

TEST(Dropout, TrainingPreservesExpectation)
{
    Dropout drop(0.3, 5);
    Tensor x({100, 100});
    x.Fill(1.0f);
    const Tensor y = drop.Forward(x);
    double mean = 0.0;
    int zeros = 0;
    for (size_t i = 0; i < y.Size(); ++i) {
        mean += static_cast<double>(y[i]);
        zeros += y[i] == 0.0f;
    }
    mean /= static_cast<double>(y.Size());
    EXPECT_NEAR(mean, 1.0, 0.02); // inverted scaling keeps E[y]=x
    EXPECT_NEAR(static_cast<double>(zeros) /
                    static_cast<double>(y.Size()),
                0.3, 0.02);
}

TEST(Dropout, BackwardUsesSameMask)
{
    Dropout drop(0.5, 9);
    Tensor x({1, 64});
    x.Fill(1.0f);
    const Tensor y = drop.Forward(x);
    Tensor dy({1, 64});
    dy.Fill(1.0f);
    const Tensor dx = drop.Backward(dy);
    for (size_t i = 0; i < y.Size(); ++i) {
        if (y[i] == 0.0f)
            EXPECT_EQ(dx[i], 0.0f);
        else
            EXPECT_FLOAT_EQ(dx[i], y[i]); // same 1/(1-p) scale
    }
}

TEST(LrSchedules, ExponentialDecays)
{
    ExponentialLr lr(0.1, 0.9);
    EXPECT_DOUBLE_EQ(lr.At(0), 0.1);
    EXPECT_NEAR(lr.At(2), 0.1 * 0.81, 1e-12);
    EXPECT_THROW(ExponentialLr(0.0, 0.9), std::invalid_argument);
}

TEST(LrSchedules, StepDropsAtBoundaries)
{
    StepLr lr(1.0, 10, 0.5);
    EXPECT_DOUBLE_EQ(lr.At(9), 1.0);
    EXPECT_DOUBLE_EQ(lr.At(10), 0.5);
    EXPECT_DOUBLE_EQ(lr.At(25), 0.25);
}

TEST(LrSchedules, CosineAnnealsFromBaseToFloor)
{
    CosineLr lr(1.0, 0.1, 100);
    EXPECT_DOUBLE_EQ(lr.At(0), 1.0);
    EXPECT_NEAR(lr.At(50), 0.55, 1e-9);
    EXPECT_DOUBLE_EQ(lr.At(100), 0.1);
    EXPECT_DOUBLE_EQ(lr.At(1000), 0.1);
    // Monotone decreasing over the schedule.
    for (int e = 1; e < 100; ++e)
        EXPECT_LE(lr.At(e), lr.At(e - 1) + 1e-12);
}

TEST(LrSchedules, WarmupRampsLinearly)
{
    ExponentialLr inner(0.1, 1.0);
    WarmupLr lr(4, inner);
    EXPECT_LT(lr.At(0), lr.At(1));
    EXPECT_LT(lr.At(3), 0.1);
    EXPECT_DOUBLE_EQ(lr.At(4), 0.1);
    EXPECT_DOUBLE_EQ(lr.At(50), 0.1);
}

/** Property: Adam and SGD both strictly reduce a convex quadratic. */
class OptimizerDescentTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerDescentTest, BothOptimizersDescendQuadratic)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    Dense d(3, 1, rng);
    const Tensor x = Tensor::Randn({32, 3}, rng);
    Tensor y({32, 1});
    for (int i = 0; i < 32; ++i)
        y.At(i, 0) = x.At(i, 0) - 2.0f * x.At(i, 2);

    auto eval = [&] { return MseLoss(d.Forward(x), y).value; };
    const double start = eval();
    Adam adam(d.Params(), 0.02);
    for (int s = 0; s < 50; ++s) {
        const LossResult l = MseLoss(d.Forward(x), y);
        adam.ZeroGrad();
        d.Backward(l.grad);
        adam.Step();
    }
    EXPECT_LT(eval(), start * 0.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerDescentTest,
                         ::testing::Range(1, 7));

} // namespace
} // namespace sinan
