/**
 * @file
 * Tests for permutation-importance feature selection: a planted model
 * that only reads one channel must attribute all importance there.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "models/feature_selection.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::SmallFeatures;
using testutil::SyntheticDataset;

/** Overwrites labels with the model's own outputs so the model fits the
 *  data perfectly: permuting a used channel must then hurt, and
 *  permuting unused ones cannot. */
Dataset
Relabel(LatencyModel& model, Dataset data, const FeatureConfig& f)
{
    std::vector<int> idx(data.samples.size());
    std::iota(idx.begin(), idx.end(), 0);
    const Batch batch = data.MakeBatch(idx, 0, idx.size());
    const Tensor y = model.Forward(batch);
    for (size_t i = 0; i < data.samples.size(); ++i)
        for (int p = 0; p < f.n_percentiles; ++p)
            data.samples[i].y_latency[p] =
                y.At(static_cast<int>(i), p);
    return data;
}

/** Model whose output depends only on one X_RH channel. */
class OneChannelModel : public LatencyModel {
  public:
    OneChannelModel(const FeatureConfig& f, int channel)
        : fcfg_(f), channel_(channel)
    {
    }

    Tensor
    Forward(const Batch& batch) override
    {
        const int b = batch.Size();
        Tensor y({b, fcfg_.n_percentiles});
        for (int i = 0; i < b; ++i) {
            float acc = 0.0f;
            for (int tier = 0; tier < fcfg_.n_tiers; ++tier)
                for (int t = 0; t < fcfg_.history; ++t)
                    acc += batch.xrh.At(i, channel_, tier, t);
            for (int p = 0; p < fcfg_.n_percentiles; ++p)
                y.At(i, p) = acc;
        }
        return y;
    }

    void Backward(const Tensor&) override {}
    std::vector<Param*> Params() override { return {}; }
    const char* Name() const override { return "one-channel"; }
    void Save(std::ostream&) const override {}
    void Load(std::istream&) override {}

  private:
    FeatureConfig fcfg_;
    int channel_;
};

TEST(PermutationImportance, FindsTheOnlyUsedChannel)
{
    const FeatureConfig f = SmallFeatures(4, 3);
    OneChannelModel model(f, 2); // only RSS matters
    const Dataset data = Relabel(model, SyntheticDataset(f, 80, 3), f);
    const FeatureSelectionReport rep =
        PermutationImportance(model, data, f);
    ASSERT_EQ(rep.channels.size(),
              static_cast<size_t>(FeatureConfig::kChannels));
    EXPECT_EQ(rep.channels.front().channel, 2);
    EXPECT_GT(rep.channels.front().delta_rmse_ms, 0.0);
    // Unused channels barely move the RMSE.
    for (size_t i = 1; i < rep.channels.size(); ++i) {
        EXPECT_LT(rep.channels[i].delta_rmse_ms,
                  0.05 * rep.channels.front().delta_rmse_ms + 1e-9);
    }
}

TEST(PermutationImportance, SpuriousChannelsComplementTheUsedOne)
{
    const FeatureConfig f = SmallFeatures(4, 3);
    OneChannelModel model(f, 4); // rx packets
    const Dataset data = Relabel(model, SyntheticDataset(f, 80, 5), f);
    const FeatureSelectionReport rep =
        PermutationImportance(model, data, f);
    const std::vector<int> spurious = rep.SpuriousChannels(0.05);
    EXPECT_EQ(spurious.size(),
              static_cast<size_t>(FeatureConfig::kChannels - 1));
    for (int c : spurious)
        EXPECT_NE(c, 4);
}

TEST(PermutationImportance, DeterministicForSameSeed)
{
    const FeatureConfig f = SmallFeatures(3, 3);
    const Dataset data = SyntheticDataset(f, 50, 7);
    OneChannelModel model(f, 0);
    const FeatureSelectionReport a =
        PermutationImportance(model, data, f, 9);
    const FeatureSelectionReport b =
        PermutationImportance(model, data, f, 9);
    ASSERT_EQ(a.channels.size(), b.channels.size());
    for (size_t i = 0; i < a.channels.size(); ++i) {
        EXPECT_EQ(a.channels[i].channel, b.channels[i].channel);
        EXPECT_DOUBLE_EQ(a.channels[i].permuted_rmse_ms,
                         b.channels[i].permuted_rmse_ms);
    }
}

} // namespace
} // namespace sinan
