/**
 * @file
 * Contract-layer tests: the SINAN_CHECK macro family's diagnostics and
 * exception type, plus death tests proving that a violated contract on
 * a hot path actually kills the process (under SINAN_CHECK_ABORT)
 * with the formatted diagnostic on stderr. Each death test pins a
 * specific contract — removing the corresponding SINAN_CHECK from the
 * source makes the test fail.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "app/apps.h"
#include "common/check.h"
#include "common/stats.h"
#include "core/scheduler.h"
#include "tensor/tensor.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;

TEST(ContractViolation, IsAnInvalidArgument)
{
    // Pre-contract call sites (and ~40 existing tests) classify bad
    // inputs as std::invalid_argument; the contract layer must stay
    // compatible with that taxonomy.
    static_assert(
        std::is_base_of_v<std::invalid_argument, ContractViolation>);
    EXPECT_THROW(SINAN_CHECK(false), std::invalid_argument);
}

TEST(ContractViolation, DiagnosticCarriesExpressionOperandsAndLocation)
{
    const int lhs = 7, rhs = 9;
    try {
        SINAN_CHECK_EQ(lhs, rhs);
        FAIL() << "SINAN_CHECK_EQ(7, 9) did not throw";
    } catch (const ContractViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("SINAN_CHECK_EQ failed"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("lhs == rhs"), std::string::npos) << msg;
        EXPECT_NE(msg.find("(7 vs 9)"), std::string::npos) << msg;
        EXPECT_NE(msg.find("contracts_test.cc:"), std::string::npos)
            << msg;
    }
}

TEST(ContractViolation, BoundsReportsValueAndRange)
{
    try {
        const double v = 2.5;
        SINAN_CHECK_BOUNDS(v, 0.0, 1.0);
        FAIL() << "out-of-bounds value did not throw";
    } catch (const ContractViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("SINAN_CHECK_BOUNDS failed"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("2.5 outside [0, 1]"), std::string::npos)
            << msg;
    }
}

TEST(ContractViolation, FiniteRejectsNanAndInf)
{
    EXPECT_THROW(SINAN_CHECK_FINITE(std::nan("")), ContractViolation);
    EXPECT_THROW(SINAN_CHECK_FINITE(1.0 / 0.0), ContractViolation);
    SINAN_CHECK_FINITE(0.0); // must not throw
}

TEST(ContractViolation, ShapeReportsActualVsExpected)
{
    Tensor t({2, 3});
    SINAN_CHECK_SHAPE(t, 2, 3); // must not throw
    try {
        SINAN_CHECK_SHAPE(t, 4, 5);
        FAIL() << "shape mismatch did not throw";
    } catch (const ContractViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("[2, 3]"), std::string::npos) << msg;
        EXPECT_NE(msg.find("[4, 5]"), std::string::npos) << msg;
    }
}

TEST(ContractViolation, DchecksAreOnInReleaseBuilds)
{
    // Unlike assert(), SINAN_DCHECK survives NDEBUG — ctest runs
    // Release, so a contract compiled out there is never exercised.
    EXPECT_THROW(SINAN_DCHECK(false), ContractViolation);
    EXPECT_THROW(SINAN_DCHECK_EQ(1, 2), ContractViolation);
}

/**
 * Death tests run with SINAN_CHECK_ABORT set, which makes a failed
 * check print the diagnostic and abort() instead of unwinding —
 * deterministic stderr for the matcher below. The threadsafe style
 * re-execs the test binary so the shared thread pool and sanitizer
 * runtimes are not forked mid-flight.
 */
class ContractDeathTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
        ::setenv("SINAN_CHECK_ABORT", "1", 1);
    }

    void TearDown() override { ::unsetenv("SINAN_CHECK_ABORT"); }
};

TEST_F(ContractDeathTest, MatmulShapeMismatchDies)
{
    Tensor a({2, 3}), b({4, 5}), c({2, 5});
    EXPECT_DEATH(MatMul(a, b, c),
                 "SINAN_CHECK failed.*inner dimension mismatch");
}

TEST_F(ContractDeathTest, MatmulWrongOutputShapeDies)
{
    Tensor a({2, 3}), b({3, 5}), c({2, 4});
    EXPECT_DEATH(MatMul(a, b, c), "SINAN_CHECK_SHAPE failed");
}

TEST_F(ContractDeathTest, SchedulerAllocationOutsideTierBoundsDies)
{
    const FeatureConfig f = SmallFeatures(3, 3);
    HybridModel model(f, HybridConfig{}, 1);

    Application app;
    app.qos_ms = f.qos_ms;
    for (int i = 0; i < f.n_tiers; ++i) {
        TierSpec t;
        t.name = "tier" + std::to_string(i);
        t.min_cpu = 0.2;
        t.max_cpu = 8.0;
        app.tiers.push_back(t);
    }

    SinanScheduler sched(model, SchedulerConfig{});
    const IntervalObservation obs = MakeObs(f, 0.0, 100, 2.0, 0.3, 100);
    // 100 cores on a tier capped at 8: outside the Table-1 action set.
    const std::vector<double> alloc(app.tiers.size(), 100.0);
    EXPECT_DEATH(sched.Decide(obs, alloc, app),
                 "SINAN_CHECK_BOUNDS failed.*outside");
}

TEST_F(ContractDeathTest, UnsealedDigestQueryDies)
{
    PercentileDigest d;
    d.Add(1.0);
    d.Add(2.0);
    EXPECT_DEATH((void)d.Quantile(0.99),
                 "Seal\\(\\) before querying");
}

} // namespace
} // namespace sinan
