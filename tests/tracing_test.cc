/**
 * @file
 * Tests for the sampled distributed tracer: span structure, timing
 * consistency with the queueing model, async handling, sampling, and
 * per-tier attribution.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "cluster/tracing.h"

namespace sinan {
namespace {

/** frontend -> {worker, async logger} topology. */
Application
FanoutApp()
{
    Application app;
    app.name = "traced";
    app.qos_ms = 1000.0;
    for (const char* n : {"frontend", "worker", "logger"}) {
        TierSpec t;
        t.name = n;
        t.init_cpu = 4.0;
        t.max_cpu = 8.0;
        app.tiers.push_back(t);
    }
    CallNode worker;
    worker.tier = 1;
    worker.demand_s = 0.02;
    worker.demand_cv = 0.0;
    CallNode logger;
    logger.tier = 2;
    logger.demand_s = 0.01;
    logger.demand_cv = 0.0;
    logger.async = true;
    RequestType rt;
    rt.name = "req";
    rt.root.tier = 0;
    rt.root.demand_s = 0.005;
    rt.root.demand_cv = 0.0;
    rt.root.children = {worker, logger};
    app.request_types.push_back(rt);
    return app;
}

void
Drain(Cluster& cluster, double seconds, double start = 0.0)
{
    const int ticks = static_cast<int>(std::llround(seconds / 0.01));
    for (int i = 0; i < ticks; ++i)
        cluster.Tick(start + i * 0.01, 0.01);
}

TEST(Tracing, DisabledByDefault)
{
    Cluster cluster(FanoutApp(), ClusterConfig{}, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.3);
    EXPECT_TRUE(cluster.TakeTraces().empty());
}

TEST(Tracing, FullSamplingTracesEveryRequest)
{
    ClusterConfig cfg;
    cfg.trace_sample = 1.0;
    Cluster cluster(FanoutApp(), cfg, 1);
    for (int i = 0; i < 5; ++i)
        cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    const std::vector<Trace> traces = cluster.TakeTraces();
    ASSERT_EQ(traces.size(), 5u);
    // Second call returns nothing (take semantics).
    EXPECT_TRUE(cluster.TakeTraces().empty());
}

TEST(Tracing, SpanStructureMatchesCallTree)
{
    ClusterConfig cfg;
    cfg.trace_sample = 1.0;
    Cluster cluster(FanoutApp(), cfg, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    const std::vector<Trace> traces = cluster.TakeTraces();
    ASSERT_EQ(traces.size(), 1u);
    const Trace& t = traces[0];
    ASSERT_EQ(t.spans.size(), 3u);
    EXPECT_EQ(t.spans[0].tier, 0);
    EXPECT_EQ(t.spans[0].parent_span, -1);
    EXPECT_FALSE(t.spans[0].async);
    // Children parented on the root span; the logger is async.
    for (size_t i = 1; i < 3; ++i)
        EXPECT_EQ(t.spans[i].parent_span, 0);
    int async_count = 0;
    for (const Span& s : t.spans)
        async_count += s.async;
    EXPECT_EQ(async_count, 1);
    EXPECT_GT(t.trace_id, 0);
    EXPECT_EQ(t.request_type, 0);
}

TEST(Tracing, TimingIsConsistent)
{
    ClusterConfig cfg;
    cfg.trace_sample = 1.0;
    Cluster cluster(FanoutApp(), cfg, 1);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    const Trace t = cluster.TakeTraces().at(0);
    for (const Span& s : t.spans) {
        EXPECT_GE(s.start_s, s.enqueue_s);
        EXPECT_GE(s.end_s, s.start_s);
    }
    // Root span duration ~ trace latency; worker (20 ms demand) spans
    // at least 20 ms.
    const Span& root = t.spans[0];
    EXPECT_NEAR(root.end_s - t.begin_s, t.LatencyMs() / 1000.0, 1e-9);
    const Span& worker = t.spans[1].tier == 1 ? t.spans[1] : t.spans[2];
    EXPECT_GE(worker.DurationS(), 0.02 - 1e-9);
}

TEST(Tracing, QueueWaitShowsUpInSpans)
{
    Application app = FanoutApp();
    app.tiers[1].concurrency_per_replica = 1;
    app.tiers[1].replicas = 1;
    ClusterConfig cfg;
    cfg.trace_sample = 1.0;
    Cluster cluster(app, cfg, 1);
    // Two requests: the second's worker span must wait for the slot.
    cluster.Inject(0, 0.0);
    cluster.Inject(0, 0.0);
    Drain(cluster, 0.5);
    const std::vector<Trace> traces = cluster.TakeTraces();
    ASSERT_EQ(traces.size(), 2u);
    double max_wait = 0.0;
    for (const Trace& t : traces)
        for (const Span& s : t.spans)
            if (s.tier == 1)
                max_wait = std::max(max_wait, s.QueueWaitS());
    EXPECT_GE(max_wait, 0.01 - 1e-9);
}

TEST(Tracing, SamplingRateApproximatelyRespected)
{
    ClusterConfig cfg;
    cfg.trace_sample = 0.2;
    Cluster cluster(FanoutApp(), cfg, 7);
    for (int i = 0; i < 500; ++i)
        cluster.Inject(0, 0.0);
    Drain(cluster, 3.0);
    const size_t traced = cluster.TakeTraces().size();
    EXPECT_GT(traced, 60u);
    EXPECT_LT(traced, 140u);
}

TEST(Tracing, SlowestSyncSpanIgnoresAsync)
{
    Trace t;
    Span a;
    a.tier = 0;
    a.enqueue_s = 0;
    a.end_s = 1.0;
    Span b;
    b.tier = 1;
    b.enqueue_s = 0;
    b.end_s = 5.0;
    b.async = true;
    t.spans = {a, b};
    EXPECT_EQ(t.SlowestSyncSpan(), 0);
}

TEST(Tracing, AttributionSumsPerTier)
{
    ClusterConfig cfg;
    cfg.trace_sample = 1.0;
    Cluster cluster(FanoutApp(), cfg, 1);
    for (int i = 0; i < 10; ++i)
        cluster.Inject(0, 0.0);
    Drain(cluster, 1.0);
    const std::vector<Trace> traces = cluster.TakeTraces();
    const auto attr = AttributeByTier(traces, 3);
    ASSERT_EQ(attr.size(), 3u);
    // The root span covers the whole request, so the frontend's total
    // is at least the worker's; the worker accounts for its 20 ms
    // demand per request; the async logger contributes nothing.
    EXPECT_GE(attr[0].sync_time_s, attr[1].sync_time_s);
    EXPECT_GE(attr[1].sync_time_s, 10 * 0.02 - 1e-6);
    EXPECT_EQ(attr[2].spans, 0);
    EXPECT_EQ(attr[1].spans, 10);
    EXPECT_THROW(AttributeByTier(traces, 0), std::invalid_argument);
}

} // namespace
} // namespace sinan
