/**
 * @file
 * Tests for the LIME explainer: the ridge solver, and attribution on a
 * planted model whose output depends on exactly one tier / one resource
 * channel.
 */
#include <gtest/gtest.h>

#include "explain/lime.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::SmallFeatures;
using testutil::SyntheticDataset;

TEST(SolveRidge, SolvesKnownSystem)
{
    // [2 0; 0 4] w = [2; 8] -> w = [1; 2] (lambda = 0).
    const std::vector<double> w =
        SolveRidge({{2, 0}, {0, 4}}, {2, 8}, 0.0);
    EXPECT_NEAR(w[0], 1.0, 1e-9);
    EXPECT_NEAR(w[1], 2.0, 1e-9);
}

TEST(SolveRidge, RegularizationShrinksSolution)
{
    const std::vector<double> w0 =
        SolveRidge({{1, 0}, {0, 1}}, {1, 1}, 0.0);
    const std::vector<double> w1 =
        SolveRidge({{1, 0}, {0, 1}}, {1, 1}, 1.0);
    EXPECT_LT(w1[0], w0[0]);
}

TEST(SolveRidge, HandlesPivoting)
{
    // Requires a row swap: [0 1; 1 0] w = [3; 5] -> w = [5; 3].
    const std::vector<double> w =
        SolveRidge({{0, 1}, {1, 0}}, {3, 5}, 0.0);
    EXPECT_NEAR(w[0], 5.0, 1e-9);
    EXPECT_NEAR(w[1], 3.0, 1e-9);
}

TEST(SolveRidge, RejectsBadInputs)
{
    EXPECT_THROW(SolveRidge({{1, 0}}, {1, 1}, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(SolveRidge({{0, 0}, {0, 0}}, {1, 1}, 0.0),
                 std::runtime_error);
}

/**
 * Planted model: predicted p99 = sum over the history of one specific
 * (channel, tier) cell of X_RH. LIME must attribute importance there.
 */
class PlantedModel : public LatencyModel {
  public:
    PlantedModel(const FeatureConfig& f, int tier, int channel)
        : fcfg_(f), tier_(tier), channel_(channel)
    {
    }

    Tensor
    Forward(const Batch& batch) override
    {
        const int b = batch.Size();
        Tensor y({b, fcfg_.n_percentiles});
        for (int i = 0; i < b; ++i) {
            float acc = 0.0f;
            for (int t = 0; t < fcfg_.history; ++t)
                acc += batch.xrh.At(i, channel_, tier_, t);
            for (int p = 0; p < fcfg_.n_percentiles; ++p)
                y.At(i, p) = acc;
        }
        return y;
    }

    void Backward(const Tensor&) override {}
    std::vector<Param*> Params() override { return {}; }
    const char* Name() const override { return "planted"; }
    void Save(std::ostream&) const override {}
    void Load(std::istream&) override {}

  private:
    FeatureConfig fcfg_;
    int tier_;
    int channel_;
};

TEST(LimeExplainer, FindsPlantedTier)
{
    const FeatureConfig f = SmallFeatures(6, 3);
    PlantedModel model(f, /*tier=*/4, /*channel=*/2);
    LimeExplainer lime(model, f);
    const Dataset d = SyntheticDataset(f, 1, 5);
    // Make sure the planted cell is non-zero so scaling matters.
    Sample s = d.samples[0];
    for (int t = 0; t < f.history; ++t)
        s.xrh.At(2, 4, t) = 0.5f;
    const LimeExplanation exp = lime.ExplainTiers(s);
    ASSERT_EQ(exp.weights.size(), 6u);
    EXPECT_EQ(exp.TopK(1)[0], 4);
    // The planted tier dominates all others.
    for (int i = 0; i < 6; ++i) {
        if (i != 4) {
            EXPECT_GT(exp.weights[4], 5.0 * exp.weights[i]);
        }
    }
}

TEST(LimeExplainer, FindsPlantedResourceChannel)
{
    const FeatureConfig f = SmallFeatures(6, 3);
    PlantedModel model(f, 4, 2);
    LimeExplainer lime(model, f);
    const Dataset d = SyntheticDataset(f, 1, 7);
    Sample s = d.samples[0];
    for (int t = 0; t < f.history; ++t)
        s.xrh.At(2, 4, t) = 0.5f;
    const LimeExplanation exp = lime.ExplainResources(s, 4);
    ASSERT_EQ(exp.weights.size(),
              static_cast<size_t>(FeatureConfig::kChannels));
    EXPECT_EQ(exp.TopK(1)[0], 2);
}

TEST(LimeExplainer, OtherTiersGetNoWeightFromUnrelatedChannel)
{
    const FeatureConfig f = SmallFeatures(6, 3);
    PlantedModel model(f, 4, 2);
    LimeExplainer lime(model, f);
    const Dataset d = SyntheticDataset(f, 1, 9);
    Sample s = d.samples[0];
    for (int t = 0; t < f.history; ++t)
        s.xrh.At(2, 4, t) = 0.5f;
    // Explaining resources of a DIFFERENT tier: weights all near zero.
    const LimeExplanation exp = lime.ExplainResources(s, 1);
    for (double w : exp.weights)
        EXPECT_LT(w, 0.05);
}

TEST(LimeExplainer, AveragedExplanationAggregates)
{
    const FeatureConfig f = SmallFeatures(4, 3);
    PlantedModel model(f, 1, 0);
    LimeExplainer lime(model, f);
    Dataset d = SyntheticDataset(f, 3, 11);
    std::vector<Sample> xs;
    for (Sample s : d.samples) {
        for (int t = 0; t < f.history; ++t)
            s.xrh.At(0, 1, t) = 0.4f;
        xs.push_back(std::move(s));
    }
    const LimeExplanation exp = lime.ExplainTiersAveraged(xs);
    EXPECT_EQ(exp.TopK(1)[0], 1);
    EXPECT_THROW(lime.ExplainTiersAveraged({}), std::invalid_argument);
}

TEST(LimeExplanation, TopKOrdersByWeight)
{
    LimeExplanation e;
    e.weights = {0.1, 0.9, 0.5};
    const std::vector<int> top = e.TopK(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 1);
    EXPECT_EQ(top[1], 2);
    EXPECT_EQ(e.TopK(10).size(), 3u);
}

} // namespace
} // namespace sinan
