/**
 * @file
 * Tests for the Hotel Reservation and Social Network application graphs:
 * structure, variants, and end-to-end calibration (a feasible allocation
 * exists that meets QoS; a starved one violates it).
 */
#include <gtest/gtest.h>

#include <set>

#include "app/apps.h"
#include "cluster/cluster.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace sinan {
namespace {

void
CheckTreeTiers(const CallNode& node, int n_tiers)
{
    EXPECT_GE(node.tier, 0);
    EXPECT_LT(node.tier, n_tiers);
    EXPECT_GT(node.demand_s, 0.0);
    EXPECT_GE(node.hit_prob, 0.0);
    EXPECT_LE(node.hit_prob, 1.0);
    for (const CallNode& c : node.children)
        CheckTreeTiers(c, n_tiers);
}

void
CheckAppWellFormed(const Application& app)
{
    std::set<std::string> names;
    for (const TierSpec& t : app.tiers) {
        EXPECT_TRUE(names.insert(t.name).second)
            << "duplicate tier " << t.name;
        EXPECT_GT(t.max_cpu, t.min_cpu);
        EXPECT_GE(t.init_cpu, t.min_cpu);
        EXPECT_LE(t.init_cpu, t.max_cpu);
        EXPECT_GT(t.concurrency_per_replica * t.replicas, 0);
    }
    for (const RequestType& rt : app.request_types) {
        EXPECT_GT(rt.weight, 0.0);
        CheckTreeTiers(rt.root, static_cast<int>(app.tiers.size()));
    }
}

TEST(HotelApp, HasPaperTopology)
{
    const Application app = BuildHotelReservation();
    EXPECT_EQ(app.tiers.size(), 17u);
    EXPECT_EQ(app.request_types.size(), 4u);
    EXPECT_DOUBLE_EQ(app.qos_ms, 200.0);
    EXPECT_GE(app.TierIndex("frontend"), 0);
    EXPECT_GE(app.TierIndex("geo-mongo"), 0);
    EXPECT_EQ(app.TierIndex("not-a-tier"), -1);
    CheckAppWellFormed(app);
}

TEST(SocialApp, HasPaperTopology)
{
    const Application app = BuildSocialNetwork();
    EXPECT_EQ(app.tiers.size(), 28u);
    EXPECT_EQ(app.request_types.size(), 3u);
    EXPECT_DOUBLE_EQ(app.qos_ms, 500.0);
    EXPECT_GE(app.TierIndex("nginx"), 0);
    EXPECT_GE(app.TierIndex("graph-redis"), 0);
    EXPECT_GE(app.TierIndex("mediaFilter"), 0);
    EXPECT_GE(app.TierIndex("writeHomeTl-rabbitmq"), 0);
    CheckAppWellFormed(app);
}

TEST(SocialApp, RequestTypesMatchPaper)
{
    const Application app = BuildSocialNetwork();
    EXPECT_EQ(app.request_types[0].name, "ComposePost");
    EXPECT_EQ(app.request_types[1].name, "ReadHomeTimeline");
    EXPECT_EQ(app.request_types[2].name, "ReadUserTimeline");
    // Default mix is W0 = 5:80:15.
    EXPECT_DOUBLE_EQ(app.request_types[0].weight, 5.0);
    EXPECT_DOUBLE_EQ(app.request_types[1].weight, 80.0);
    EXPECT_DOUBLE_EQ(app.request_types[2].weight, 15.0);
}

TEST(SocialApp, LogSyncVariantEnablesRedisStalls)
{
    SocialOptions opts;
    opts.redis_log_sync = true;
    const Application app = BuildSocialNetwork(opts);
    const int redis = app.TierIndex("graph-redis");
    ASSERT_GE(redis, 0);
    EXPECT_TRUE(app.tiers[redis].log_sync);
    EXPECT_FALSE(BuildSocialNetwork()
                     .tiers[redis]
                     .log_sync);
}

TEST(SocialApp, AesVariantAddsComputeDemand)
{
    const Application plain = BuildSocialNetwork();
    SocialOptions opts;
    opts.aes_encryption = true;
    const Application aes = BuildSocialNetwork(opts);
    // ComposePost's composePost stage demand should grow.
    const double plain_demand =
        plain.request_types[0].root.children[0].demand_s;
    const double aes_demand =
        aes.request_types[0].root.children[0].demand_s;
    EXPECT_GT(aes_demand, plain_demand);
}

TEST(SetRequestMix, ValidatesAndApplies)
{
    Application app = BuildSocialNetwork();
    SetRequestMix(app, {10.0, 80.0, 10.0});
    EXPECT_DOUBLE_EQ(app.request_types[0].weight, 10.0);
    EXPECT_THROW(SetRequestMix(app, {1.0}), std::invalid_argument);
    EXPECT_THROW(SetRequestMix(app, {-1.0, 2.0, 3.0}),
                 std::invalid_argument);
}

TEST(SocialNetworkMixes, MatchesSection55)
{
    const auto mixes = SocialNetworkMixes();
    ASSERT_EQ(mixes.size(), 4u);
    EXPECT_EQ(mixes[0], (std::vector<double>{5.0, 80.0, 15.0}));
    EXPECT_EQ(mixes[1], (std::vector<double>{10.0, 80.0, 10.0}));
    EXPECT_EQ(mixes[2], (std::vector<double>{1.0, 90.0, 9.0}));
    EXPECT_EQ(mixes[3], (std::vector<double>{5.0, 70.0, 25.0}));
}

/** Runs an app at fixed load/allocation, returning the steady-state p99. */
double
SteadyP99(const Application& app, double users, double alloc_mult,
          double duration = 40.0)
{
    Cluster cluster(app, ClusterConfig{}, 5);
    std::vector<double> alloc;
    for (const TierSpec& t : app.tiers)
        alloc.push_back(std::min(t.max_cpu, t.init_cpu * alloc_mult));
    cluster.SetAllocation(alloc);
    ConstantLoad load(users);
    WorkloadGenerator gen(cluster, load, 17);
    Simulator sim;
    double p99_acc = 0.0;
    int cnt = 0;
    sim.AddTickable([&](double now, double dt) { gen.Tick(now, dt); });
    sim.AddTickable([&](double now, double dt) { cluster.Tick(now, dt); });
    sim.AddIntervalListener([&](int64_t, double now) {
        const IntervalObservation obs = cluster.Harvest(now, 1.0);
        if (now > duration / 3.0) {
            p99_acc += obs.P99();
            ++cnt;
        }
    });
    sim.RunFor(duration);
    return p99_acc / cnt;
}

TEST(Calibration, HotelMeetsQosWithGenerousAllocation)
{
    const Application app = BuildHotelReservation();
    EXPECT_LT(SteadyP99(app, 1000.0, 4.0), app.qos_ms);
    EXPECT_LT(SteadyP99(app, 3700.0, 4.0), app.qos_ms);
}

TEST(Calibration, HotelViolatesQosWhenStarved)
{
    const Application app = BuildHotelReservation();
    EXPECT_GT(SteadyP99(app, 3000.0, 1.0), app.qos_ms);
}

TEST(Calibration, SocialMeetsQosWithGenerousAllocation)
{
    const Application app = BuildSocialNetwork();
    EXPECT_LT(SteadyP99(app, 100.0, 4.0), app.qos_ms);
    EXPECT_LT(SteadyP99(app, 450.0, 4.0), app.qos_ms);
}

TEST(Calibration, SocialViolatesQosWhenStarved)
{
    const Application app = BuildSocialNetwork();
    EXPECT_GT(SteadyP99(app, 350.0, 1.0), app.qos_ms);
}

TEST(Calibration, ComposeHeavyMixNeedsMoreCpu)
{
    // W1 (compose-heavy) must consume more CPU than W2 (read-heavy).
    auto used_cpu = [&](const std::vector<double>& mix) {
        Application app = BuildSocialNetwork();
        SetRequestMix(app, mix);
        Cluster cluster(app, ClusterConfig{}, 5);
        std::vector<double> alloc;
        for (const TierSpec& t : app.tiers)
            alloc.push_back(t.max_cpu);
        cluster.SetAllocation(alloc);
        ConstantLoad load(300.0);
        WorkloadGenerator gen(cluster, load, 29);
        Simulator sim;
        double used = 0.0;
        int cnt = 0;
        sim.AddTickable(
            [&](double now, double dt) { gen.Tick(now, dt); });
        sim.AddTickable(
            [&](double now, double dt) { cluster.Tick(now, dt); });
        sim.AddIntervalListener([&](int64_t, double now) {
            const IntervalObservation obs = cluster.Harvest(now, 1.0);
            if (now > 10.0) {
                for (const TierMetrics& m : obs.tiers)
                    used += m.cpu_used;
                ++cnt;
            }
        });
        sim.RunFor(30.0);
        return used / cnt;
    };
    const auto mixes = SocialNetworkMixes();
    EXPECT_GT(used_cpu(mixes[1]), used_cpu(mixes[2]) * 1.2);
}

} // namespace
} // namespace sinan
