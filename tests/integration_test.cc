/**
 * @file
 * End-to-end integration: bandit collection -> hybrid training -> online
 * Sinan scheduling on the simulated Social Network, scaled down for test
 * runtime. Verifies that the whole pipeline holds together and that the
 * trained manager behaves like a resource manager (meets QoS most of the
 * time while not pinning everything at max).
 */
#include <gtest/gtest.h>

#include "app/apps.h"
#include "core/scheduler.h"
#include "harness/harness.h"

namespace sinan {
namespace {

TEST(Integration, CollectTrainScheduleSocialNetwork)
{
    const Application app = BuildSocialNetwork();

    PipelineConfig pcfg;
    pcfg.collect_s = 500.0; // scaled down for test time
    pcfg.users_min = 50.0;
    pcfg.users_max = 350.0;
    pcfg.hybrid = DefaultHybridConfig();
    pcfg.hybrid.train.epochs = 6;
    pcfg.hybrid.bt.n_trees = 80;
    pcfg.seed = 101;

    const TrainedSinan trained = TrainSinanForApp(app, pcfg);
    ASSERT_GT(trained.train.samples.size(), 300u);
    ASSERT_GT(trained.valid.samples.size(), 30u);
    // The bandit must have collected both violating and meeting samples
    // (Fig. 9's requirement on the training distribution).
    const double viol = trained.train.ViolationRate();
    EXPECT_GT(viol, 0.02);
    EXPECT_LT(viol, 0.9);
    EXPECT_GT(trained.report.bt_val_accuracy, 0.7);
    EXPECT_GT(trained.report.cnn.val_rmse_ms, 0.0);
    EXPECT_LT(trained.report.cnn.val_rmse_ms, app.qos_ms);

    SchedulerConfig scfg;
    SinanScheduler sinan(*trained.model, scfg);
    ConstantLoad load(200.0);
    RunConfig rcfg;
    rcfg.duration_s = 60.0;
    rcfg.warmup_s = 15.0;
    const RunResult r = RunManaged(app, sinan, load, rcfg);

    // The scheduler must act (allocations move) and keep QoS most of
    // the time at this moderate load.
    EXPECT_GT(r.qos_meet_prob, 0.7);
    double max_total = 0.0;
    for (const TierSpec& t : app.tiers)
        max_total += t.max_cpu;
    EXPECT_LT(r.mean_cpu, 0.9 * max_total);
}

} // namespace
} // namespace sinan
