/**
 * @file
 * Tests for the boosted-trees substrate: learning power on synthetic
 * tasks, early stopping, serialization, importance attribution, and
 * probability calibration basics.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gbt/boosted_trees.h"

namespace sinan {
namespace {

/** Labels = 1 iff x0 > 0.5 (single informative feature out of 4). */
GbtDataset
ThresholdDataset(int n, uint64_t seed)
{
    Rng rng(seed);
    GbtDataset d;
    for (int i = 0; i < n; ++i) {
        std::vector<float> row(4);
        for (float& v : row)
            v = static_cast<float>(rng.Uniform());
        d.AddRow(row, row[0] > 0.5f ? 1.0f : 0.0f);
    }
    return d;
}

/** Labels = XOR(x0>0.5, x1>0.5) — requires depth-2 interaction. */
GbtDataset
XorDataset(int n, uint64_t seed)
{
    Rng rng(seed);
    GbtDataset d;
    for (int i = 0; i < n; ++i) {
        std::vector<float> row(4);
        for (float& v : row)
            v = static_cast<float>(rng.Uniform());
        const bool a = row[0] > 0.5f, b = row[1] > 0.5f;
        d.AddRow(row, (a != b) ? 1.0f : 0.0f);
    }
    return d;
}

double
Accuracy(const BoostedTrees& model, const GbtDataset& d)
{
    int ok = 0;
    for (int i = 0; i < d.n_rows; ++i) {
        const double p =
            model.Predict(&d.x[static_cast<size_t>(i) * d.n_features]);
        if ((p >= 0.5) == (d.y[i] >= 0.5f))
            ++ok;
    }
    return static_cast<double>(ok) / d.n_rows;
}

TEST(BoostedTrees, RejectsBadConfigAndData)
{
    GbtConfig bad;
    bad.n_trees = 0;
    EXPECT_THROW(BoostedTrees{bad}, std::invalid_argument);
    bad = GbtConfig{};
    bad.max_bins = 1;
    EXPECT_THROW(BoostedTrees{bad}, std::invalid_argument);

    BoostedTrees model;
    GbtDataset empty;
    EXPECT_THROW(model.Train(empty), std::invalid_argument);
}

TEST(BoostedTrees, LearnsThresholdFunction)
{
    BoostedTrees model;
    const GbtDataset train = ThresholdDataset(2000, 1);
    const GbtDataset test = ThresholdDataset(500, 2);
    model.Train(train);
    EXPECT_GT(Accuracy(model, train), 0.98);
    EXPECT_GT(Accuracy(model, test), 0.96);
}

TEST(BoostedTrees, LearnsXorInteraction)
{
    GbtConfig cfg;
    cfg.max_depth = 3;
    cfg.n_trees = 150;
    BoostedTrees model(cfg);
    const GbtDataset train = XorDataset(3000, 3);
    const GbtDataset test = XorDataset(800, 4);
    model.Train(train);
    EXPECT_GT(Accuracy(model, test), 0.93);
}

TEST(BoostedTrees, ProbabilitiesAreCalibratedAtExtremes)
{
    BoostedTrees model;
    model.Train(ThresholdDataset(2000, 5));
    std::vector<float> clearly_pos = {0.95f, 0.5f, 0.5f, 0.5f};
    std::vector<float> clearly_neg = {0.05f, 0.5f, 0.5f, 0.5f};
    EXPECT_GT(model.Predict(clearly_pos), 0.9);
    EXPECT_LT(model.Predict(clearly_neg), 0.1);
}

TEST(BoostedTrees, FeatureImportanceConcentratesOnInformativeFeature)
{
    BoostedTrees model;
    model.Train(ThresholdDataset(2000, 6));
    const std::vector<double> imp = model.FeatureImportance();
    ASSERT_EQ(imp.size(), 4u);
    EXPECT_GT(imp[0], 10.0 * (imp[1] + imp[2] + imp[3] + 1e-9));
}

TEST(BoostedTrees, EarlyStoppingKeepsBestRound)
{
    GbtConfig with_stop;
    with_stop.n_trees = 400;
    with_stop.early_stop_rounds = 5;
    BoostedTrees stopped(with_stop);
    const GbtDataset train = ThresholdDataset(1000, 7);
    const GbtDataset valid = ThresholdDataset(300, 8);
    stopped.Train(train, &valid);
    EXPECT_LT(stopped.NumTrees(), 400);
    EXPECT_GT(stopped.NumTrees(), 0);
    EXPECT_GT(Accuracy(stopped, valid), 0.95);
}

TEST(BoostedTrees, NoValidationSetRunsAllRounds)
{
    GbtConfig cfg;
    cfg.n_trees = 25;
    BoostedTrees model(cfg);
    model.Train(ThresholdDataset(500, 9));
    EXPECT_EQ(model.NumTrees(), 25);
}

TEST(BoostedTrees, RegressionObjectiveLearnsLinearTarget)
{
    Rng rng(10);
    GbtDataset train;
    for (int i = 0; i < 3000; ++i) {
        std::vector<float> row = {
            static_cast<float>(rng.Uniform()),
            static_cast<float>(rng.Uniform()),
        };
        train.AddRow(row, 3.0f * row[0] + row[1]);
    }
    GbtConfig cfg;
    cfg.n_trees = 150;
    cfg.learning_rate = 0.2;
    BoostedTrees model(cfg, BoostedTrees::Objective::kSquared);
    model.Train(train);
    double se = 0.0;
    for (int i = 0; i < train.n_rows; ++i) {
        const double pred = model.Predict(&train.x[i * 2]);
        const double d = pred - static_cast<double>(train.y[i]);
        se += d * d;
    }
    EXPECT_LT(std::sqrt(se / train.n_rows), 0.2);
}

TEST(BoostedTrees, SaveLoadRoundTripsPredictions)
{
    BoostedTrees model;
    const GbtDataset train = ThresholdDataset(800, 11);
    model.Train(train);
    std::stringstream ss;
    model.Save(ss);
    BoostedTrees loaded;
    loaded.Load(ss);
    EXPECT_EQ(loaded.NumTrees(), model.NumTrees());
    for (int i = 0; i < 50; ++i) {
        EXPECT_DOUBLE_EQ(
            loaded.Predict(&train.x[static_cast<size_t>(i) * 4]),
            model.Predict(&train.x[static_cast<size_t>(i) * 4]));
    }
}

TEST(BoostedTrees, LoadRejectsGarbage)
{
    std::stringstream ss("not a model");
    BoostedTrees model;
    EXPECT_THROW(model.Load(ss), std::runtime_error);
}

TEST(BoostedTrees, ConstantLabelsPredictThatLabel)
{
    Rng rng(12);
    GbtDataset d;
    for (int i = 0; i < 200; ++i) {
        d.AddRow({static_cast<float>(rng.Uniform())}, 1.0f);
    }
    BoostedTrees model;
    model.Train(d);
    EXPECT_GT(model.Predict(&d.x[0]), 0.95);
}


TEST(BoostedTrees, GammaPrunesWeakSplits)
{
    // With a huge minimum split gain, the model cannot split at all and
    // degenerates to the base score.
    GbtConfig cfg;
    cfg.gamma = 1e9;
    cfg.n_trees = 20;
    BoostedTrees model(cfg);
    const GbtDataset train = ThresholdDataset(500, 21);
    model.Train(train);
    const double p1 = model.Predict(&train.x[0]);
    const double p2 = model.Predict(&train.x[4]);
    EXPECT_NEAR(p1, p2, 1e-9); // every row hits the same (root) leaves
}

TEST(BoostedTrees, MinChildWeightLimitsLeafSize)
{
    GbtConfig strict;
    strict.min_child_weight = 1e9; // no split can satisfy it
    strict.n_trees = 10;
    BoostedTrees model(strict);
    const GbtDataset train = ThresholdDataset(400, 23);
    model.Train(train);
    EXPECT_NEAR(model.Predict(&train.x[0]),
                model.Predict(&train.x[40]), 1e-9);
}

TEST(BoostedTrees, ShrinkageSlowsFitting)
{
    const GbtDataset train = ThresholdDataset(800, 25);
    auto margin_after = [&](double lr) {
        GbtConfig cfg;
        cfg.learning_rate = lr;
        cfg.n_trees = 3;
        BoostedTrees model(cfg);
        model.Train(train);
        std::vector<float> pos = {0.9f, 0.5f, 0.5f, 0.5f};
        return std::abs(model.PredictMargin(pos.data()));
    };
    EXPECT_GT(margin_after(0.5), margin_after(0.05));
}

TEST(BoostedTrees, HandlesConstantFeatureColumns)
{
    Rng rng(27);
    GbtDataset d;
    for (int i = 0; i < 300; ++i) {
        const float x = static_cast<float>(rng.Uniform());
        d.AddRow({x, 1.0f, 0.0f}, x > 0.5f ? 1.0f : 0.0f);
    }
    BoostedTrees model;
    model.Train(d); // constant columns must not crash split finding
    EXPECT_GT(Accuracy(model, d), 0.95);
    const auto imp = model.FeatureImportance();
    EXPECT_DOUBLE_EQ(imp[1], 0.0);
    EXPECT_DOUBLE_EQ(imp[2], 0.0);
}

TEST(BoostedTrees, TrainingIsBitIdenticalAcrossThreadCounts)
{
    // Feature-parallel binning/histograms/split search must not change
    // the trained model: the serialized bytes and the predictions of a
    // 1-thread and an N-thread training run have to match exactly.
    const GbtDataset train = XorDataset(1500, 31);
    const GbtDataset valid = XorDataset(400, 32);
    GbtConfig cfg;
    cfg.max_depth = 3;
    cfg.n_trees = 60;
    cfg.early_stop_rounds = 5;

    const int saved = NumThreads();
    SetNumThreads(1);
    BoostedTrees serial(cfg);
    serial.Train(train, &valid);
    std::stringstream serial_bytes;
    serial.Save(serial_bytes);

    for (int threads : {2, 4, 8}) {
        SetNumThreads(threads);
        BoostedTrees parallel(cfg);
        parallel.Train(train, &valid);
        std::stringstream parallel_bytes;
        parallel.Save(parallel_bytes);
        EXPECT_EQ(parallel_bytes.str(), serial_bytes.str())
            << "serialized model differs at " << threads << " threads";
        for (int i = 0; i < 100; ++i) {
            ASSERT_DOUBLE_EQ(
                parallel.Predict(&train.x[static_cast<size_t>(i) * 4]),
                serial.Predict(&train.x[static_cast<size_t>(i) * 4]));
        }
    }
    SetNumThreads(saved);
}

/** Property: predictions are probabilities for any seed/config. */
class GbtProbabilityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GbtProbabilityTest, PredictionsAreInUnitInterval)
{
    const auto [seed, depth] = GetParam();
    GbtConfig cfg;
    cfg.max_depth = depth;
    cfg.n_trees = 60;
    BoostedTrees model(cfg);
    const GbtDataset train =
        XorDataset(600, static_cast<uint64_t>(seed));
    model.Train(train);
    Rng rng(static_cast<uint64_t>(seed) + 100);
    for (int i = 0; i < 200; ++i) {
        std::vector<float> row(4);
        for (float& v : row)
            v = static_cast<float>(rng.Uniform(-1.0, 2.0)); // out of range
        const double p = model.Predict(row);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GbtProbabilityTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(2, 4, 6)));

} // namespace
} // namespace sinan
