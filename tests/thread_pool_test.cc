/**
 * @file
 * Tests for the shared thread pool: construction/teardown, exact-once
 * ParallelFor coverage with the documented block structure, nested
 * submission safety, a tiny-task stress run, and exception propagation.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace sinan {
namespace {

/** Pins the global pool to @p n threads for one test. */
class ScopedThreads {
  public:
    explicit ScopedThreads(int n) : saved_(NumThreads())
    {
        SetNumThreads(n);
    }
    ~ScopedThreads() { SetNumThreads(saved_); }

  private:
    int saved_;
};

TEST(ThreadPoolTest, ConstructsAndJoinsForVariousSizes)
{
    for (int n : {1, 2, 3, 8}) {
        ThreadPool pool(n);
        EXPECT_EQ(pool.NumThreads(), n);
    }
    // Clamped to at least the calling thread.
    ThreadPool tiny(0);
    EXPECT_EQ(tiny.NumThreads(), 1);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::mutex mu;
    std::condition_variable cv;
    constexpr int kTasks = 64;
    for (int i = 0; i < kTasks; ++i) {
        pool.Submit([&] {
            if (ran.fetch_add(1) + 1 == kTasks) {
                std::lock_guard<std::mutex> lock(mu);
                cv.notify_all();
            }
        });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ran.load() == kTasks; });
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolTest, TeardownWithQueuedTasksDoesNotHang)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.Submit([&] { ran.fetch_add(1); });
    } // destructor joins; queued tasks either ran or were discarded
    SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 8}) {
        ScopedThreads scoped(threads);
        for (int64_t grain : {1, 3, 7, 100, 1000}) {
            constexpr int64_t kBegin = 5, kEnd = 777;
            std::vector<std::atomic<int>> hits(kEnd - kBegin);
            for (auto& h : hits)
                h.store(0);
            ParallelFor(kBegin, kEnd, grain,
                        [&](int64_t lo, int64_t hi) {
                ASSERT_LT(lo, hi);
                // Documented block structure: lo sits on a grain
                // boundary and the block is at most `grain` wide.
                EXPECT_EQ((lo - kBegin) % grain, 0);
                EXPECT_LE(hi - lo, grain);
                for (int64_t i = lo; i < hi; ++i)
                    hits[i - kBegin].fetch_add(1);
            });
            for (const auto& h : hits)
                ASSERT_EQ(h.load(), 1)
                    << "threads=" << threads << " grain=" << grain;
        }
    }
}

TEST(ThreadPoolTest, ParallelForEmptyAndDegenerateRanges)
{
    std::atomic<int> calls{0};
    ParallelFor(0, 0, 4, [&](int64_t, int64_t) { calls.fetch_add(1); });
    ParallelFor(10, 10, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
    ParallelFor(10, 5, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, NestedParallelForRunsSeriallyWithoutDeadlock)
{
    ScopedThreads scoped(4);
    constexpr int kOuter = 16, kInner = 32;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    for (auto& h : hits)
        h.store(0);
    ParallelFor(0, kOuter, 1, [&](int64_t olo, int64_t ohi) {
        for (int64_t o = olo; o < ohi; ++o) {
            ParallelFor(0, kInner, 4, [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i)
                    hits[o * kInner + i].fetch_add(1);
            });
        }
    });
    for (const auto& h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SubmitFromWorkerDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
    pool.Submit([&] {
        // Nested submission from a worker thread must be legal.
        pool.Submit([&] {
            done.fetch_add(1);
            std::lock_guard<std::mutex> lock(mu);
            cv.notify_all();
        });
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.load() == 1; });
    EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPoolTest, TenThousandTinyTasksStress)
{
    ScopedThreads scoped(8);
    constexpr int64_t kTasks = 10000;
    std::atomic<int64_t> sum{0};
    // grain=1 → every index is its own block/task.
    ParallelFor(0, kTasks, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    for (int threads : {1, 4}) {
        ScopedThreads scoped(threads);
        EXPECT_THROW(
            ParallelFor(0, 100, 1,
                        [&](int64_t lo, int64_t) {
                if (lo == 37)
                    throw std::runtime_error("block 37 failed");
            }),
            std::runtime_error);
    }
}

TEST(ThreadPoolTest, ExceptionCancelsRemainingBlocksAndPoolSurvives)
{
    ScopedThreads scoped(4);
    std::atomic<int> ran{0};
    try {
        ParallelFor(0, 100000, 1, [&](int64_t, int64_t) {
            ran.fetch_add(1);
            throw std::runtime_error("boom");
        });
        FAIL() << "expected throw";
    } catch (const std::runtime_error&) {
    }
    // Cancellation: nowhere near all blocks ran.
    EXPECT_LT(ran.load(), 100000);
    // The pool is still usable after an exceptional region.
    std::atomic<int> ok{0};
    ParallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) {
        ok.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPoolTest, SetNumThreadsResizesAndRestoresDefault)
{
    const int def = NumThreads();
    SetNumThreads(3);
    EXPECT_EQ(NumThreads(), 3);
    SetNumThreads(1);
    EXPECT_EQ(NumThreads(), 1);
    // <= 0 restores the default (SINAN_THREADS or hardware).
    SetNumThreads(0);
    EXPECT_EQ(NumThreads(), def);
}

TEST(ThreadPoolTest, OnWorkerThreadFlag)
{
    EXPECT_FALSE(ThreadPool::OnWorkerThread());
    ThreadPool pool(2);
    std::atomic<int> seen{-1};
    std::mutex mu;
    std::condition_variable cv;
    pool.Submit([&] {
        seen.store(ThreadPool::OnWorkerThread() ? 1 : 0);
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return seen.load() >= 0; });
    EXPECT_EQ(seen.load(), 1);
}

} // namespace
} // namespace sinan
