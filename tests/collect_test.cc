/**
 * @file
 * Tests for the data-collection substrate: the random step load, dataset
 * construction from interval logs, the bandit explorer's guard rails,
 * and its information-gain behaviour.
 */
#include <gtest/gtest.h>

#include <set>

#include "app/apps.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "test_util.h"

namespace sinan {
namespace {

using testutil::MakeObs;
using testutil::SmallFeatures;

TEST(RandomStepLoad, StaysWithinBoundsAndIsDeterministic)
{
    RandomStepLoad a(100, 300, 10, 20, 500, 7);
    RandomStepLoad b(100, 300, 10, 20, 500, 7);
    for (double t = 0; t < 500; t += 13) {
        EXPECT_GE(a.UsersAt(t), 100.0);
        EXPECT_LE(a.UsersAt(t), 300.0);
        EXPECT_DOUBLE_EQ(a.UsersAt(t), b.UsersAt(t));
    }
    EXPECT_THROW(RandomStepLoad(300, 100, 10, 20, 500, 7),
                 std::invalid_argument);
}

TEST(RandomStepLoad, ActuallyChangesLevels)
{
    RandomStepLoad load(0, 1000, 10, 20, 500, 9);
    double lo = 1e18, hi = -1e18;
    for (double t = 0; t < 500; t += 5) {
        lo = std::min(lo, load.UsersAt(t));
        hi = std::max(hi, load.UsersAt(t));
    }
    EXPECT_GT(hi - lo, 200.0);
}

TEST(BuildDataset, WindowingAndLabels)
{
    const FeatureConfig f = SmallFeatures(2, 3); // T=3, k=3
    std::vector<IntervalObservation> obs;
    std::vector<std::vector<double>> allocs;
    // 10 intervals; interval 6 violates QoS (p99 600 > 500).
    for (int t = 0; t < 10; ++t) {
        const double p99 = t == 6 ? 600.0 : 100.0;
        obs.push_back(MakeObs(f, t, 100, 2.0, 0.5, p99));
        allocs.push_back(std::vector<double>(f.n_tiers, 2.0 + t));
    }
    const Dataset d = BuildDataset(obs, allocs, f);
    // Sample exists for t in [T-1, n-k-1] = [2, 6] -> 5 samples.
    ASSERT_EQ(d.samples.size(), 5u);
    // Sample at t=2 targets obs[3] (p99 = 100).
    EXPECT_NEAR(d.samples[0].p99_ms, 100.0, 1e-9);
    // X_RC of the first sample is allocs[3] = 5.0 (normalized).
    EXPECT_FLOAT_EQ(d.samples[0].xrc[0],
                    static_cast<float>(5.0 / f.cpu_scale));
    // Violation-within-k: t=3 looks at obs[4..6] -> includes the spike.
    EXPECT_FLOAT_EQ(d.samples[1].violation, 1.0f);
    // t=2 looks at obs[3..5] -> no violation.
    EXPECT_FLOAT_EQ(d.samples[0].violation, 0.0f);
    // t=6 targets obs[7] after the spike and looks at obs[7..9]: clean.
    EXPECT_FLOAT_EQ(d.samples[4].violation, 0.0f);
}

TEST(BuildDataset, TooShortLogYieldsEmpty)
{
    const FeatureConfig f = SmallFeatures(2, 3);
    std::vector<IntervalObservation> obs(
        4, MakeObs(f, 0, 100, 2.0, 0.5, 100));
    std::vector<std::vector<double>> allocs(
        4, std::vector<double>(f.n_tiers, 1.0));
    EXPECT_TRUE(BuildDataset(obs, allocs, f).samples.empty());
    allocs.pop_back();
    EXPECT_THROW(BuildDataset(obs, allocs, f), std::invalid_argument);
}

TEST(RandomExplorer, StaysWithinSpecBounds)
{
    const Application app = BuildSocialNetwork();
    RandomExplorer rnd(3);
    const FeatureConfig f =
        SmallFeatures(static_cast<int>(app.tiers.size()), 3);
    const IntervalObservation obs = MakeObs(f, 0, 100, 2.0, 0.5, 100);
    std::vector<double> alloc(app.tiers.size(), 1.0);
    for (int rep = 0; rep < 10; ++rep) {
        const std::vector<double> next = rnd.Decide(obs, alloc, app);
        ASSERT_EQ(next.size(), app.tiers.size());
        for (size_t i = 0; i < next.size(); ++i) {
            EXPECT_GE(next[i], app.tiers[i].min_cpu);
            EXPECT_LE(next[i], app.tiers[i].max_cpu);
        }
    }
}

class BanditFixture : public ::testing::Test {
  protected:
    BanditFixture()
        : app_(BuildSocialNetwork()),
          features_(SmallFeatures(static_cast<int>(app_.tiers.size()), 3))
    {
        cfg_.qos_ms = app_.qos_ms;
        cfg_.seed = 5;
    }

    Application app_;
    FeatureConfig features_;
    BanditConfig cfg_;
};

TEST_F(BanditFixture, NoDownscaleWhileViolating)
{
    BanditExplorer bandit(cfg_);
    std::vector<double> alloc(app_.tiers.size(), 2.0);
    // First decision primes state; p99 above QoS forbids reclamation.
    const IntervalObservation obs =
        MakeObs(features_, 0, 200, 2.0, 0.8, app_.qos_ms + 50.0);
    const std::vector<double> next = bandit.Decide(obs, alloc, app_);
    for (size_t i = 0; i < next.size(); ++i)
        EXPECT_GE(next[i], alloc[i] - 1e-9) << "tier " << i;
}

TEST_F(BanditFixture, ForcedRecoveryBeyondExploreRegion)
{
    BanditExplorer bandit(cfg_);
    std::vector<double> alloc(app_.tiers.size(), 2.0);
    const double lat = app_.qos_ms * (1.0 + cfg_.alpha) + 100.0;
    const IntervalObservation obs =
        MakeObs(features_, 0, 200, 2.0, 0.9, lat);
    const std::vector<double> next = bandit.Decide(obs, alloc, app_);
    for (size_t i = 0; i < next.size(); ++i) {
        const double expected =
            std::min(app_.tiers[i].max_cpu, alloc[i] * 1.3 + 0.2);
        EXPECT_NEAR(next[i], expected, 1e-9);
    }
}

TEST_F(BanditFixture, UtilizationCapBlocksDownsizing)
{
    BanditExplorer bandit(cfg_);
    std::vector<double> alloc(app_.tiers.size(), 2.0);
    // Meeting QoS but every tier near saturation: no tier may shrink.
    const IntervalObservation obs =
        MakeObs(features_, 0, 200, 2.0, 0.97, 100.0);
    const std::vector<double> next = bandit.Decide(obs, alloc, app_);
    for (size_t i = 0; i < next.size(); ++i)
        EXPECT_GE(next[i], alloc[i] - 1e-9);
}

TEST_F(BanditFixture, ExploresDownWhenComfortable)
{
    BanditExplorer bandit(cfg_);
    std::vector<double> alloc(app_.tiers.size(), 4.0);
    // Low utilization, low latency: the C_op bias favours reclamation
    // for at least some tiers within a few steps.
    bool any_down = false;
    for (int step = 0; step < 5 && !any_down; ++step) {
        const IntervalObservation obs =
            MakeObs(features_, step, 100, 4.0, 0.2, 80.0);
        const std::vector<double> next = bandit.Decide(obs, alloc, app_);
        for (size_t i = 0; i < next.size(); ++i)
            any_down |= next[i] < alloc[i] - 1e-9;
        alloc = next;
    }
    EXPECT_TRUE(any_down);
}

TEST_F(BanditFixture, StatisticsAccumulateAcrossDecisions)
{
    BanditExplorer bandit(cfg_);
    std::vector<double> alloc(app_.tiers.size(), 2.0);
    EXPECT_EQ(bandit.CellsVisited(), 0u);
    for (int step = 0; step < 6; ++step) {
        const IntervalObservation obs = MakeObs(
            features_, step, 100.0 + 40.0 * step, 2.0, 0.5, 120.0);
        alloc = bandit.Decide(obs, alloc, app_);
    }
    EXPECT_GT(bandit.CellsVisited(), app_.tiers.size());
    bandit.Reset();
    EXPECT_EQ(bandit.CellsVisited(), 0u);
}

TEST_F(BanditFixture, AllocationsAlwaysWithinSpec)
{
    BanditExplorer bandit(cfg_);
    std::vector<double> alloc(app_.tiers.size(), 2.0);
    Rng rng(3);
    for (int step = 0; step < 40; ++step) {
        const IntervalObservation obs =
            MakeObs(features_, step, rng.Uniform(50, 400), 2.0,
                    rng.Uniform(0.1, 1.0), rng.Uniform(50, 900));
        alloc = bandit.Decide(obs, alloc, app_);
        for (size_t i = 0; i < alloc.size(); ++i) {
            EXPECT_GE(alloc[i], app_.tiers[i].min_cpu - 1e-9);
            EXPECT_LE(alloc[i], app_.tiers[i].max_cpu + 1e-9);
        }
    }
}

TEST(Collector, EndToEndProducesLabeledSamples)
{
    const Application app = BuildSocialNetwork();
    CollectionConfig cfg;
    cfg.duration_s = 60.0;
    cfg.users_min = 50;
    cfg.users_max = 250;
    cfg.features = SmallFeatures(static_cast<int>(app.tiers.size()), 3);
    cfg.features.qos_ms = app.qos_ms;
    cfg.seed = 13;

    BanditConfig bcfg;
    bcfg.qos_ms = app.qos_ms;
    BanditExplorer bandit(bcfg);
    const Dataset d = Collect(app, bandit, cfg);
    // 60 intervals minus warmup/lookahead edges.
    EXPECT_GT(d.samples.size(), 40u);
    for (const Sample& s : d.samples) {
        EXPECT_EQ(s.xrc.Dim(0), static_cast<int>(app.tiers.size()));
        EXPECT_GE(s.p99_ms, 0.0);
    }
}


TEST(BuildDataset, LaterReclaimStopsViolationAttribution)
{
    // A violation that happens after the policy reclaims CPU must not
    // be blamed on the earlier, larger allocation.
    const FeatureConfig f = SmallFeatures(2, 3); // T=3, k=3
    std::vector<IntervalObservation> obs;
    std::vector<std::vector<double>> allocs;
    for (int t = 0; t < 10; ++t) {
        const double p99 = t == 6 ? 600.0 : 100.0;
        obs.push_back(MakeObs(f, t, 100, 2.0, 0.5, p99));
        // A big reclaim happens at interval 5.
        const double a = t >= 5 ? 1.0 : 4.0;
        allocs.push_back(std::vector<double>(f.n_tiers, a));
    }
    const Dataset d = BuildDataset(obs, allocs, f);
    ASSERT_EQ(d.samples.size(), 5u);
    // Sample at t=3 (alloc for t+1=4 is 4.0) scans t=5.. but the
    // reclaim at t=5 stops the scan before the violation at t=6.
    EXPECT_FLOAT_EQ(d.samples[1].violation, 0.0f);
    // Sample at t=4 labels alloc[5]=1.0; allocation stays at 1.0
    // through the violation at t=6 -> blamed.
    EXPECT_FLOAT_EQ(d.samples[2].violation, 1.0f);
}

TEST(BuildDataset, TargetsClippedAtTwiceQos)
{
    const FeatureConfig f = SmallFeatures(2, 3);
    std::vector<IntervalObservation> obs;
    std::vector<std::vector<double>> allocs;
    for (int t = 0; t < 10; ++t) {
        obs.push_back(MakeObs(f, t, 100, 2.0, 0.5, 50.0 * f.qos_ms));
        allocs.push_back(std::vector<double>(f.n_tiers, 2.0));
    }
    const Dataset d = BuildDataset(obs, allocs, f);
    ASSERT_FALSE(d.samples.empty());
    for (const Sample& s : d.samples)
        for (float y : s.y_latency)
            EXPECT_LE(y, 2.0f);
}

/**
 * Property: the Eq. 3 information gain of a cell shrinks as its sample
 * count grows — exploration naturally moves to uncertain cells. We
 * verify through the public interface: repeated identical states make
 * the bandit spread across levels rather than repeat one op forever.
 */
class BanditSpreadTest : public ::testing::TestWithParam<int> {};

TEST_P(BanditSpreadTest, RepeatedStateVisitsMultipleLevels)
{
    const Application app = BuildSocialNetwork();
    BanditConfig cfg;
    cfg.qos_ms = app.qos_ms;
    cfg.seed = static_cast<uint64_t>(GetParam());
    BanditExplorer bandit(cfg);
    const FeatureConfig f =
        SmallFeatures(static_cast<int>(app.tiers.size()), 3);

    std::set<int> tier0_levels;
    std::vector<double> alloc(app.tiers.size(), 3.0);
    for (int step = 0; step < 30; ++step) {
        const IntervalObservation obs =
            MakeObs(f, step, 200.0, 3.0, 0.5, 150.0);
        alloc = bandit.Decide(obs, alloc, app);
        tier0_levels.insert(
            static_cast<int>(std::lround(alloc[0] / cfg.quantum)));
    }
    EXPECT_GE(tier0_levels.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BanditSpreadTest,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace sinan
