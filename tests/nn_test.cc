/**
 * @file
 * Tests for the NN substrate. The load-bearing checks are numerical
 * gradient verifications (central differences) for every layer and loss,
 * plus end-to-end "SGD learns a simple function" trainability tests.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <sstream>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/lstm.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace sinan {
namespace {

/**
 * Verifies layer gradients numerically: perturbs every parameter and a
 * sample of input entries, comparing (L(x+h)-L(x-h))/2h against the
 * analytic gradients, where L = sum of squared outputs / 2 so that
 * dL/dy = y.
 */
void
CheckGradients(Layer& layer, const Tensor& x, double tol = 2e-2)
{
    auto loss_of = [&](const Tensor& in) {
        const Tensor y = layer.Forward(in);
        double acc = 0.0;
        for (size_t i = 0; i < y.Size(); ++i) {
            const double v = static_cast<double>(y[i]);
            acc += 0.5 * v * v;
        }
        return acc;
    };

    // Analytic gradients.
    const Tensor y = layer.Forward(x);
    for (Param* p : layer.Params())
        p->ZeroGrad();
    const Tensor dx = layer.Backward(y); // dL/dy = y

    constexpr float kH = 1e-3f;

    // Input gradient (sample up to 24 entries).
    Tensor xp = x;
    const size_t stride = std::max<size_t>(1, x.Size() / 24);
    for (size_t i = 0; i < x.Size(); i += stride) {
        const float orig = xp[i];
        xp[i] = orig + kH;
        const double up = loss_of(xp);
        xp[i] = orig - kH;
        const double down = loss_of(xp);
        xp[i] = orig;
        const double num =
            (up - down) / (2.0 * static_cast<double>(kH));
        EXPECT_NEAR(num, dx[i], tol * std::max(1.0, std::abs(num)))
            << "input grad mismatch at " << i;
    }

    // Parameter gradients (sample up to 24 entries per param).
    // Re-establish the analytic gradients (loss_of calls clobbered the
    // forward cache).
    (void)layer.Forward(x);
    for (Param* p : layer.Params())
        p->ZeroGrad();
    (void)layer.Backward(layer.Forward(x));
    for (Param* p : layer.Params()) {
        const size_t pstride = std::max<size_t>(1, p->value.Size() / 24);
        for (size_t i = 0; i < p->value.Size(); i += pstride) {
            const float orig = p->value[i];
            p->value[i] = orig + kH;
            const double up = loss_of(x);
            p->value[i] = orig - kH;
            const double down = loss_of(x);
            p->value[i] = orig;
            const double num =
                (up - down) / (2.0 * static_cast<double>(kH));
            EXPECT_NEAR(num, p->grad[i],
                        tol * std::max(1.0, std::abs(num)))
                << "param grad mismatch at " << i;
        }
    }
}

TEST(Dense, ForwardMatchesHandComputation)
{
    Rng rng(1);
    Dense d(2, 2, rng);
    // Overwrite weights with known values: y = xW + b.
    Param* w = d.Params()[0];
    Param* b = d.Params()[1];
    w->value.At(0, 0) = 1.0f;
    w->value.At(0, 1) = 2.0f;
    w->value.At(1, 0) = 3.0f;
    w->value.At(1, 1) = 4.0f;
    b->value[0] = 0.5f;
    b->value[1] = -0.5f;
    Tensor x({1, 2});
    x.At(0, 0) = 1.0f;
    x.At(0, 1) = 2.0f;
    const Tensor y = d.Forward(x);
    EXPECT_FLOAT_EQ(y.At(0, 0), 7.5f);  // 1*1 + 2*3 + 0.5
    EXPECT_FLOAT_EQ(y.At(0, 1), 9.5f);  // 1*2 + 2*4 - 0.5
}

TEST(Dense, GradientsMatchNumerics)
{
    Rng rng(2);
    Dense d(4, 3, rng);
    const Tensor x = Tensor::Randn({5, 4}, rng);
    CheckGradients(d, x);
}

TEST(Dense, RejectsBadShapes)
{
    Rng rng(1);
    Dense d(3, 2, rng);
    EXPECT_THROW(d.Forward(Tensor({2, 4})), std::invalid_argument);
    EXPECT_THROW(Dense(0, 2, rng), std::invalid_argument);
}

TEST(ReLU, ForwardClampsAndBackwardMasks)
{
    ReLU r;
    Tensor x({1, 4});
    x[0] = -1.0f; x[1] = 2.0f; x[2] = 0.0f; x[3] = 3.0f;
    const Tensor y = r.Forward(x);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[1], 2.0f);
    Tensor dy({1, 4});
    dy.Fill(1.0f);
    const Tensor dx = r.Backward(dy);
    EXPECT_EQ(dx[0], 0.0f);
    EXPECT_EQ(dx[1], 1.0f);
    EXPECT_EQ(dx[3], 1.0f);
}

TEST(Conv2D, IdentityKernelPassesThrough)
{
    Rng rng(3);
    Conv2D conv(1, 1, 3, rng);
    Param* w = conv.Params()[0];
    Param* b = conv.Params()[1];
    w->value.Fill(0.0f);
    w->value.At(0, 0, 1, 1) = 1.0f; // center tap
    b->value.Fill(0.0f);
    Tensor x({1, 1, 4, 4});
    for (size_t i = 0; i < x.Size(); ++i)
        x[i] = static_cast<float>(i);
    const Tensor y = conv.Forward(x);
    for (size_t i = 0; i < x.Size(); ++i)
        EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2D, SamePaddingZerosOutsideBorders)
{
    Rng rng(3);
    Conv2D conv(1, 1, 3, rng);
    Param* w = conv.Params()[0];
    Param* b = conv.Params()[1];
    w->value.Fill(1.0f); // box filter
    b->value.Fill(0.0f);
    Tensor x({1, 1, 3, 3});
    x.Fill(1.0f);
    const Tensor y = conv.Forward(x);
    EXPECT_FLOAT_EQ(y.At(0, 0, 1, 1), 9.0f); // full 3x3 neighborhood
    EXPECT_FLOAT_EQ(y.At(0, 0, 0, 0), 4.0f); // corner sees 2x2
}

TEST(Conv2D, GradientsMatchNumerics)
{
    Rng rng(4);
    Conv2D conv(2, 3, 3, rng);
    const Tensor x = Tensor::Randn({2, 2, 5, 4}, rng);
    CheckGradients(conv, x);
}

TEST(Conv2D, RejectsEvenKernel)
{
    Rng rng(1);
    EXPECT_THROW(Conv2D(1, 1, 2, rng), std::invalid_argument);
}

TEST(Flatten, RoundTripsShape)
{
    Flatten f;
    Tensor x({2, 3, 4});
    const Tensor y = f.Forward(x);
    EXPECT_EQ(y.Shape(), (std::vector<int>{2, 12}));
    const Tensor back = f.Backward(y);
    EXPECT_EQ(back.Shape(), (std::vector<int>{2, 3, 4}));
}

TEST(Lstm, GradientsMatchNumerics)
{
    Rng rng(5);
    Lstm lstm(3, 4, rng);
    const Tensor x = Tensor::Randn({2, 4, 3}, rng);
    CheckGradients(lstm, x, 3e-2);
}

TEST(Lstm, OutputShapeIsLastHidden)
{
    Rng rng(5);
    Lstm lstm(3, 6, rng);
    const Tensor y = lstm.Forward(Tensor::Randn({4, 5, 3}, rng));
    EXPECT_EQ(y.Shape(), (std::vector<int>{4, 6}));
}

TEST(Sequential, ChainsLayersAndCollectsParams)
{
    Rng rng(6);
    Sequential seq;
    seq.Emplace<Dense>(4, 8, rng);
    seq.Emplace<ReLU>();
    seq.Emplace<Dense>(8, 2, rng);
    EXPECT_EQ(seq.NumLayers(), 3u);
    EXPECT_EQ(seq.Params().size(), 4u);
    EXPECT_EQ(seq.NumParams(), 4u * 8u + 8u + 8u * 2u + 2u);
    const Tensor y = seq.Forward(Tensor::Randn({3, 4}, rng));
    EXPECT_EQ(y.Shape(), (std::vector<int>{3, 2}));
}

TEST(Sequential, SaveLoadReproducesOutputs)
{
    Rng rng(7);
    Sequential a;
    a.Emplace<Dense>(3, 5, rng);
    a.Emplace<ReLU>();
    a.Emplace<Dense>(5, 2, rng);
    const Tensor x = Tensor::Randn({2, 3}, rng);
    const Tensor y1 = a.Forward(x);

    std::stringstream ss;
    a.Save(ss);
    Rng rng2(999);
    Sequential b;
    b.Emplace<Dense>(3, 5, rng2);
    b.Emplace<ReLU>();
    b.Emplace<Dense>(5, 2, rng2);
    b.Load(ss);
    const Tensor y2 = b.Forward(x);
    for (size_t i = 0; i < y1.Size(); ++i)
        EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(ScalePhi, IdentityBelowKneeCompressedAbove)
{
    EXPECT_DOUBLE_EQ(ScalePhi(50.0, 100.0, 0.01), 50.0);
    EXPECT_DOUBLE_EQ(ScalePhi(100.0, 100.0, 0.01), 100.0);
    // Above the knee: compressed but monotone and bounded by t + 1/a.
    const double v1 = ScalePhi(200.0, 100.0, 0.01);
    const double v2 = ScalePhi(400.0, 100.0, 0.01);
    EXPECT_GT(v1, 100.0);
    EXPECT_GT(v2, v1);
    EXPECT_LT(v2, 100.0 + 1.0 / 0.01);
    // Continuity at the knee.
    EXPECT_NEAR(ScalePhi(100.0 + 1e-9, 100.0, 0.01), 100.0, 1e-6);
}

TEST(ScalePhi, LargerAlphaCompressesMore)
{
    const double a = ScalePhi(300.0, 100.0, 0.005);
    const double b = ScalePhi(300.0, 100.0, 0.02);
    EXPECT_GT(a, b);
}

TEST(ScalePhiGrad, MatchesNumericalDerivative)
{
    for (double x : {50.0, 150.0, 400.0}) {
        const double h = 1e-5;
        const double num = (ScalePhi(x + h, 100.0, 0.01) -
                            ScalePhi(x - h, 100.0, 0.01)) /
                           (2 * h);
        EXPECT_NEAR(ScalePhiGrad(x, 100.0, 0.01), num, 1e-6);
    }
}

TEST(MseLoss, ValueAndGradient)
{
    Tensor pred({1, 2}), target({1, 2});
    pred[0] = 1.0f; pred[1] = 3.0f;
    target[0] = 0.0f; target[1] = 1.0f;
    const LossResult r = MseLoss(pred, target);
    EXPECT_NEAR(r.value, (1.0 + 4.0) / 2.0, 1e-6);
    EXPECT_NEAR(r.grad[0], 2.0 * 1.0 / 2.0, 1e-6);
    EXPECT_NEAR(r.grad[1], 2.0 * 2.0 / 2.0, 1e-6);
    EXPECT_THROW(MseLoss(pred, Tensor({3})), std::invalid_argument);
}

TEST(ScaledMseLoss, GradientMatchesNumerics)
{
    Rng rng(8);
    Tensor pred({2, 3});
    Tensor target({2, 3});
    for (size_t i = 0; i < pred.Size(); ++i) {
        pred[i] = static_cast<float>(rng.Uniform(0.0, 3.0));
        target[i] = static_cast<float>(rng.Uniform(0.0, 3.0));
    }
    const LossResult r = ScaledMseLoss(pred, target, 1.0, 5.0);
    constexpr float kH = 1e-3f;
    for (size_t i = 0; i < pred.Size(); ++i) {
        Tensor p = pred;
        p[i] += kH;
        const double up = ScaledMseLoss(p, target, 1.0, 5.0).value;
        p[i] -= 2 * kH;
        const double down = ScaledMseLoss(p, target, 1.0, 5.0).value;
        EXPECT_NEAR((up - down) / (2.0 * static_cast<double>(kH)),
                    r.grad[i], 2e-3);
    }
}

TEST(ScaledMseLoss, DownweightsErrorsAboveKnee)
{
    Tensor pred({1, 1}), target({1, 1});
    // Same absolute error below vs above the knee.
    pred[0] = 0.5f;
    target[0] = 0.7f;
    const double below = ScaledMseLoss(pred, target, 1.0, 5.0).value;
    pred[0] = 3.0f;
    target[0] = 3.2f;
    const double above = ScaledMseLoss(pred, target, 1.0, 5.0).value;
    EXPECT_LT(above, below);
}

TEST(BceWithLogitsLoss, MatchesReferenceValues)
{
    Tensor logits({1, 2}), target({1, 2});
    logits[0] = 0.0f; logits[1] = 2.0f;
    target[0] = 1.0f; target[1] = 0.0f;
    const LossResult r = BceWithLogitsLoss(logits, target);
    const double expected =
        (std::log(2.0) + (std::log1p(std::exp(-2.0)) + 2.0)) / 2.0;
    EXPECT_NEAR(r.value, expected, 1e-6);
    // Gradient = (sigmoid(z) - y) / n.
    EXPECT_NEAR(r.grad[0], (0.5 - 1.0) / 2.0, 1e-6);
    EXPECT_NEAR(r.grad[1], (1.0 / (1.0 + std::exp(-2.0))) / 2.0, 1e-6);
}

TEST(BceWithLogitsLoss, GradientMatchesNumerics)
{
    Tensor logits({1, 3}), target({1, 3});
    logits[0] = -1.5f; logits[1] = 0.3f; logits[2] = 4.0f;
    target[0] = 0.0f; target[1] = 1.0f; target[2] = 1.0f;
    const LossResult r = BceWithLogitsLoss(logits, target);
    constexpr float kH = 1e-3f;
    for (size_t i = 0; i < logits.Size(); ++i) {
        Tensor l = logits;
        l[i] += kH;
        const double up = BceWithLogitsLoss(l, target).value;
        l[i] -= 2 * kH;
        const double down = BceWithLogitsLoss(l, target).value;
        EXPECT_NEAR((up - down) / (2.0 * static_cast<double>(kH)),
                    r.grad[i], 1e-4);
    }
}

TEST(Sgd, LearnsLinearRegression)
{
    // y = 2x - 1 learned by a single Dense layer.
    Rng rng(10);
    Dense d(1, 1, rng);
    Sgd sgd(d.Params(), 0.05, 0.9, 0.0);
    for (int step = 0; step < 400; ++step) {
        Tensor x({8, 1}), y({8, 1});
        for (int i = 0; i < 8; ++i) {
            const float v = static_cast<float>(rng.Uniform(-1.0, 1.0));
            x.At(i, 0) = v;
            y.At(i, 0) = 2.0f * v - 1.0f;
        }
        const Tensor pred = d.Forward(x);
        const LossResult loss = MseLoss(pred, y);
        sgd.ZeroGrad();
        d.Backward(loss.grad);
        sgd.Step();
    }
    EXPECT_NEAR(d.Params()[0]->value[0], 2.0f, 0.05);
    EXPECT_NEAR(d.Params()[1]->value[0], -1.0f, 0.05);
}

TEST(Sgd, WeightDecayShrinksIdleWeights)
{
    Rng rng(11);
    Dense d(2, 2, rng);
    const float before = std::abs(d.Params()[0]->value[0]);
    Sgd sgd(d.Params(), 0.1, 0.0, 0.1);
    for (int i = 0; i < 50; ++i) {
        sgd.ZeroGrad();
        sgd.Step(); // zero gradients: only decay acts
    }
    EXPECT_LT(std::abs(d.Params()[0]->value[0]), before);
}

TEST(Sgd, RejectsBadLearningRate)
{
    Rng rng(1);
    Dense d(1, 1, rng);
    EXPECT_THROW(Sgd(d.Params(), 0.0), std::invalid_argument);
}

/** Property: one SGD step along the gradient reduces loss for any seed. */
class SgdDescentTest : public ::testing::TestWithParam<int> {};

TEST_P(SgdDescentTest, SingleStepReducesLoss)
{
    Rng rng(static_cast<uint64_t>(GetParam()));
    Sequential net;
    net.Emplace<Dense>(3, 6, rng);
    net.Emplace<ReLU>();
    net.Emplace<Dense>(6, 1, rng);
    const Tensor x = Tensor::Randn({16, 3}, rng);
    Tensor y({16, 1});
    for (int i = 0; i < 16; ++i)
        y.At(i, 0) = static_cast<float>(rng.Uniform(-1.0, 1.0));

    Sgd sgd(net.Params(), 0.01, 0.0, 0.0);
    const LossResult before = MseLoss(net.Forward(x), y);
    sgd.ZeroGrad();
    net.Backward(before.grad);
    sgd.Step();
    const LossResult after = MseLoss(net.Forward(x), y);
    EXPECT_LT(after.value, before.value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgdDescentTest, ::testing::Range(1, 11));

} // namespace
} // namespace sinan
